//! Compiling plans into flat per-channel programs, and the plan cache.
//!
//! The daemon's hot loop used to *interpret* the [`Plan`] IR: every poll of
//! every step re-matched `Option<peer>` fields and did `BTreeMap` lookups in
//! the rank's channels, and a single global step cursor let one stalled
//! channel head-of-line-block ready steps on other channels. This module adds
//! the compilation stage between plan building and execution:
//!
//! * [`CompiledProgram`] — a dense `Vec<Instr>` lowered from a validated
//!   plan. Each instruction carries pre-resolved connector *indices* into a
//!   flat connector table (bound per registration from
//!   [`dfccl_transport::RankChannels::dense_view`]) and precomputed byte
//!   offsets/lengths, so the poll path is pure index arithmetic.
//! * [`Lane`] — the per-channel split of the instruction stream, each with
//!   its own cursor position. The daemon polls only each lane's head
//!   instruction; a stalled lane never blocks a ready one.
//! * [`PlanCache`] — memoized plan building + compilation keyed by the
//!   collective's shape, so identical registrations (e.g. the MoE workload's
//!   per-layer all-to-alls) skip plan building entirely.
//!
//! ## Why lane-wise execution preserves correctness and deadlock freedom
//!
//! The builders emit per-channel chunk-major plans and matched send/recv
//! pairs always agree on the channel (`channel = chunk_index % K`), so each
//! channel's subsequence of the plan is a self-contained chunk-major schedule
//! over its own connectors — the per-channel chunk-major argument of
//! DESIGN.md §3 applies to each lane independently, and a blocked lane-head
//! only ever waits on a strictly earlier position *of its own channel* on
//! some rank.
//!
//! What lane order alone does **not** preserve is *local* recv-buffer
//! dependencies that cross lanes: within one chunk-major phase they cannot
//! exist (a dependency connects steps of the same chunk index — the same
//! channel, where lane order is plan order), but a multi-phase schedule like
//! the hierarchical all-reduce re-chunks another phase's output (its leader
//! ring reads phase 1's partials under a different chunking), so a lane
//! running ahead could read bytes a sibling lane has not written yet.
//! Compilation therefore segments the instruction stream into **phases**
//! derived from the actual byte ranges: a new phase starts exactly at an
//! instruction that conflicts (read-after-write, write-after-write or
//! write-after-read on the recv buffer) with an earlier instruction on a
//! different lane, and an instruction is only eligible once every lane has
//! finished the earlier phases. Phase barriers point strictly backward in
//! plan order, so the constraint graph stays a sub-order of the interpreted
//! execution — acyclic, hence deadlock-free — while single-phase schedules
//! (ring, tree, pairwise) keep fully independent lanes. The
//! compiled-vs-interpreted bit-exactness property test
//! (`tests/compiled_program.rs`) exercises this across every algorithm
//! family × collective × rank count × K ∈ {1, 2, 3} at connector capacity 1.

use std::collections::HashMap;

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::chunk::ElemRange;
use crate::collective::{CollectiveDescriptor, CollectiveKind};
use crate::datatype::DataType;
use crate::plan::{algorithm, AlgorithmKind, Plan};
use crate::primitive::{PrimitiveKind, SrcBuf};
use crate::redop::ReduceOp;
use crate::selector::AlgorithmSelector;
use crate::CollectiveError;
use dfccl_transport::{
    ChannelId, ConnectorTable, LinkHealth, RankChannels, Topology, TransportError,
};
use gpu_sim::GpuId;

/// A byte range in a local device buffer, pre-resolved from an element range
/// and the collective's data type at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteRange {
    /// Offset into the buffer, bytes.
    pub off: usize,
    /// Length, bytes.
    pub len: usize,
}

impl ByteRange {
    fn of(range: ElemRange, elem_bytes: usize) -> Self {
        ByteRange {
            off: range.byte_offset(elem_bytes),
            len: range.byte_len(elem_bytes),
        }
    }

    fn overlaps(self, other: ByteRange) -> bool {
        self.len > 0
            && other.len > 0
            && self.off < other.off + other.len
            && other.off < self.off + self.len
    }
}

/// Whether executing `later` before `earlier` could observe or clobber the
/// wrong recv-buffer bytes (`later` follows `earlier` in plan order). The
/// send buffer is never written, so only recv-buffer accesses can conflict:
/// a read is an `src` operand with [`SrcBuf::Recv`], a write is any `dst`.
fn recv_buffer_conflict(later: &Instr, earlier: &Instr) -> bool {
    let read = |i: &Instr| match i.src_buf {
        SrcBuf::Recv => i.src,
        SrcBuf::Send => None,
    };
    let overlap = |a: Option<ByteRange>, b: Option<ByteRange>| match (a, b) {
        (Some(a), Some(b)) => a.overlaps(b),
        _ => false,
    };
    overlap(read(later), earlier.dst)       // read-after-write
        || overlap(later.dst, earlier.dst)  // write-after-write
        || overlap(later.dst, read(earlier)) // write-after-read
}

/// One lowered instruction of a compiled program. Connector references are
/// plain indices into the registration's [`ConnectorTable`]; byte ranges are
/// pre-multiplied by the element size. `send_conn`/`send_peer` are meaningful
/// iff `kind.has_send()`, `recv_conn` iff `kind.has_recv()` — the same
/// contract [`Plan::validate`] enforces on the source step's peer fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// What to do.
    pub kind: PrimitiveKind,
    /// Which local buffer `src` refers to.
    pub src_buf: SrcBuf,
    /// Local operand bytes (`None` when the primitive reads no local data).
    pub src: Option<ByteRange>,
    /// Local output bytes (`None` when the primitive writes no local data).
    pub dst: Option<ByteRange>,
    /// Index of the send connector in the bound table (iff `kind.has_send()`).
    pub send_conn: u32,
    /// Destination rank (iff `kind.has_send()`; used for staging/diagnostics).
    pub send_peer: u32,
    /// Index of the recv connector in the bound table (iff `kind.has_recv()`).
    pub recv_conn: u32,
    /// Chunk index within the macro step (message matching).
    pub chunk_index: u32,
    /// Macro-step index (message matching / diagnostics).
    pub step: u32,
    /// The channel this instruction's transfer rides on.
    pub channel: ChannelId,
    /// The phase this instruction belongs to (see the module docs): lanes
    /// run free within a phase, and an instruction only becomes eligible
    /// once every lane has finished the earlier phases.
    pub phase: u32,
}

/// One channel's slice of a compiled program: the indices of its
/// instructions, in plan order. Each in-flight invocation keeps an
/// independent cursor per lane, so the daemon polls only lane heads and a
/// stalled channel never blocks a ready one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lane {
    channel: ChannelId,
    instrs: Vec<u32>,
    /// `phase_prefix[p]` — how many of this lane's instructions belong to
    /// phases before `p`. A lane has finished every phase `< p` exactly when
    /// its cursor has reached this prefix; the phase-barrier check is a
    /// handful of integer compares.
    phase_prefix: Vec<u32>,
}

impl Lane {
    /// The channel this lane executes.
    pub fn channel(&self) -> ChannelId {
        self.channel
    }

    /// Number of instructions on this lane.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the lane has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The lane's instruction indices into [`CompiledProgram::instr`], in
    /// execution order.
    pub fn instr_ids(&self) -> &[u32] {
        &self.instrs
    }
}

/// A plan lowered into its flat executable form: dense instructions with
/// pre-resolved connector indices and byte ranges, split into per-channel
/// lanes. Connector-free (indices refer to the canonical ascending edge
/// lists), so one compiled program is shared by every registration of the
/// same shape; [`CompiledProgram::bind`] resolves the indices against a
/// registration's actual channels once.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    algorithm: AlgorithmKind,
    dtype: DataType,
    instrs: Vec<Instr>,
    lanes: Vec<Lane>,
    send_edges: Vec<(usize, ChannelId)>,
    recv_edges: Vec<(usize, ChannelId)>,
}

impl CompiledProgram {
    /// Lower a **validated** plan into its flat per-channel program for a
    /// collective of element type `dtype`. Connector indices are positions in
    /// the plan's ascending `send_edges()`/`recv_edges()` lists — the layout
    /// [`RankChannels::dense_view`] reproduces.
    ///
    /// The plan must satisfy [`Plan::validate`] (peer fields consistent with
    /// each step's kind); lowering a malformed plan panics rather than
    /// emitting a program with dangling indices.
    pub fn compile(plan: &Plan, dtype: DataType) -> Self {
        let send_edges = plan.send_edges().to_vec();
        let recv_edges = plan.recv_edges().to_vec();
        let elem = dtype.size_bytes();
        let mut lanes: Vec<Lane> = Vec::new();
        let mut instrs = Vec::with_capacity(plan.len());
        for (i, step) in plan.steps.iter().enumerate() {
            let (send_conn, send_peer) = if step.kind.has_send() {
                let peer = step.send_to.expect("validated send step names a peer");
                let conn = send_edges
                    .binary_search(&(peer, step.channel))
                    .expect("send edge of a validated step is in the edge list");
                (conn as u32, peer as u32)
            } else {
                (0, 0)
            };
            let recv_conn = if step.kind.has_recv() {
                let peer = step.recv_from.expect("validated recv step names a peer");
                recv_edges
                    .binary_search(&(peer, step.channel))
                    .expect("recv edge of a validated step is in the edge list")
                    as u32
            } else {
                0
            };
            let lane = match lanes.iter().position(|l| l.channel == step.channel) {
                Some(li) => li,
                None => {
                    lanes.push(Lane {
                        channel: step.channel,
                        instrs: Vec::new(),
                        phase_prefix: Vec::new(),
                    });
                    lanes.len() - 1
                }
            };
            lanes[lane].instrs.push(i as u32);
            instrs.push(Instr {
                kind: step.kind,
                src_buf: step.src_buf,
                src: step.src.map(|r| ByteRange::of(r, elem)),
                dst: step.dst.map(|r| ByteRange::of(r, elem)),
                send_conn,
                send_peer,
                recv_conn,
                chunk_index: step.chunk_index,
                step: step.step,
                channel: step.channel,
                phase: 0,
            });
        }
        // Deterministic lane order (ascending channel); builders emit channel
        // ids first-seen in chunk order, which is already ascending, but the
        // sort makes the layout independent of emission order.
        lanes.sort_by_key(|l| l.channel);
        // Phase segmentation, derived from actual recv-buffer data
        // dependencies: greedily grow a phase until an instruction conflicts
        // (read-after-write / write-after-write / write-after-read on the
        // recv buffer) with an earlier instruction *on a different lane* —
        // same-lane conflicts are already ordered by the lane cursor, since
        // lane order preserves plan order. The conflicting instruction
        // starts a new phase, and an instruction only becomes eligible once
        // every lane has finished the earlier phases, so executing lanes in
        // any interleaving observes exactly the interpreted path's
        // recv-buffer contents. Single-phase schedules (ring, tree,
        // pairwise: within one chunk-major phase, dependencies always
        // connect steps of the same chunk — the same lane) carry no barriers
        // at all; the hierarchical schedule's phases (whose phase 2 reads
        // phase 1's partials under a different chunking) are recovered
        // automatically. Single-lane programs skip the quadratic scan —
        // plan order is lane order.
        let mut phase = 0u32;
        if lanes.len() > 1 {
            let mut phase_start = 0usize;
            for i in 0..instrs.len() {
                let split = instrs[phase_start..i].iter().rev().any(|earlier| {
                    earlier.channel != instrs[i].channel
                        && recv_buffer_conflict(&instrs[i], earlier)
                });
                if split {
                    phase += 1;
                    phase_start = i;
                }
                instrs[i].phase = phase;
            }
        }
        // Per-lane phase prefixes: how many of the lane's instructions sit
        // in phases before `p`, for every phase — the barrier check's data.
        let phase_count = phase as usize + 1;
        for lane in &mut lanes {
            let mut prefix = vec![0u32; phase_count + 1];
            for &idx in &lane.instrs {
                prefix[instrs[idx as usize].phase as usize + 1] += 1;
            }
            for p in 0..phase_count {
                prefix[p + 1] += prefix[p];
            }
            lane.phase_prefix = prefix;
        }
        CompiledProgram {
            algorithm: plan.algorithm,
            dtype,
            instrs,
            lanes,
            send_edges,
            recv_edges,
        }
    }

    /// The algorithm family the source plan came from.
    pub fn algorithm(&self) -> AlgorithmKind {
        self.algorithm
    }

    /// The element type byte ranges were resolved for.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `idx`.
    #[inline]
    pub fn instr(&self, idx: u32) -> &Instr {
        &self.instrs[idx as usize]
    }

    /// All instructions, in plan order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The per-channel lanes, ascending by channel.
    pub fn lanes(&self) -> &[Lane] {
        &self.lanes
    }

    /// Number of lanes (distinct channels; 0 for an empty program).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The ascending send-edge list the send connector indices refer to.
    pub fn send_edges(&self) -> &[(usize, ChannelId)] {
        &self.send_edges
    }

    /// The ascending recv-edge list the recv connector indices refer to.
    pub fn recv_edges(&self) -> &[(usize, ChannelId)] {
        &self.recv_edges
    }

    /// Number of phases (independently chunk-major-sorted segments) in the
    /// program. Single-phase schedules (ring, pairwise) have no cross-lane
    /// barriers at all.
    pub fn phase_count(&self) -> usize {
        self.instrs.last().map_or(1, |i| i.phase as usize + 1)
    }

    /// Whether instruction `idx` is past its phase barrier: every lane must
    /// have finished the phases before the instruction's own, given the
    /// current per-lane cursors. Lanes run free within a phase; this check
    /// only orders cross-phase local-buffer dependencies (which the builders
    /// chunk differently per phase, so they may cross lanes).
    #[inline]
    pub fn instr_eligible(&self, idx: u32, lane_cursors: &[u32]) -> bool {
        let phase = self.instrs[idx as usize].phase as usize;
        if phase == 0 {
            return true;
        }
        self.lanes
            .iter()
            .zip(lane_cursors)
            .all(|(lane, &cur)| cur >= lane.phase_prefix[phase])
    }

    /// The send-connector table index for the edge to `peer` on `channel`,
    /// if the program sends over it. Used to flush a staged chunk, whose
    /// connector is identified by `(peer, channel)` in the dynamic context.
    #[inline]
    pub fn send_conn_for(&self, peer: usize, channel: ChannelId) -> Option<u32> {
        self.send_edges
            .binary_search(&(peer, channel))
            .ok()
            .map(|i| i as u32)
    }

    /// Resolve this program's connector indices against a registration's
    /// channels: position `i` of the returned table is edge `i` of the
    /// program's edge lists. Errors if the channels were built for a
    /// different edge set.
    pub fn bind(&self, channels: &RankChannels) -> Result<ConnectorTable, TransportError> {
        channels.dense_view(&self.send_edges, &self.recv_edges)
    }
}

/// The shape of a registration, i.e. everything a compiled plan depends on
/// besides the topology and the device set (a [`PlanCache`] lives inside one
/// domain, whose topology and chunking are fixed — callers must not share a
/// cache across topologies or chunk configurations beyond the keyed
/// `chunk_elems`). The ordered device set is keyed separately, as the outer
/// level of the cache's two-level map, so the hit path can probe it with a
/// borrowed `&[GpuId]` instead of cloning the descriptor's `Vec<GpuId>`;
/// everything left in this key is `Copy`, so building a probe key allocates
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Collective kind.
    pub kind: CollectiveKind,
    /// Element count.
    pub count: usize,
    /// Element type.
    pub dtype: DataType,
    /// Reduce operator.
    pub op: Option<ReduceOp>,
    /// Root rank (rooted collectives).
    pub root: Option<usize>,
    /// The registering rank.
    pub rank: usize,
    /// The resolved algorithm family.
    pub algorithm: AlgorithmKind,
    /// Chunk granularity the plan was built at.
    pub chunk_elems: usize,
    /// The resolved channel count (striping factor).
    pub channels: usize,
    /// The domain's [`dfccl_transport::LinkHealth`] generation the plan was
    /// selected under. A quarantine or heal bumps the generation, so plans
    /// chosen against a stale health view miss instead of riding a dead edge
    /// (0 forever in a domain that never sees a failure).
    pub health_epoch: u64,
}

/// A cached, validated plan together with its compiled program. Cloning is
/// two `Arc` bumps.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The validated plan.
    pub plan: Arc<Plan>,
    /// Its connector-free compiled program.
    pub program: Arc<CompiledProgram>,
    /// Whether selection had to avoid a quarantined edge (family fallback or
    /// mesh reroute) — surfaced as the `plans_degraded` telemetry counter.
    pub degraded: bool,
}

/// Upper bound on distinct shapes a [`PlanCache`] retains. Far above the
/// paper's "hundreds of registered collectives" regime; a workload that
/// registers an unbounded stream of *distinct* shapes (e.g. ever-changing
/// element counts) evicts arbitrary entries past this point instead of
/// growing without bound — evicted shapes simply recompile on next use.
pub const PLAN_CACHE_MAX_SHAPES: usize = 4096;

/// Memoized plan building + compilation keyed by collective shape
/// ([`PlanKey`]). Repeat registrations of the same shape — the common case
/// for per-layer collectives — return the shared `Arc`s without building,
/// validating or lowering anything.
///
/// Invalidation: a plan depends on its key, the domain's fixed topology, and
/// the domain's link-health view — the latter enters the key as
/// [`PlanKey::health_epoch`], so a quarantine or heal retires stale entries
/// by construction (they miss and eventually evict). Elastic membership
/// removes a device from the domain instead; that is the one event that
/// *deletes* entries, via [`PlanCache::invalidate_device`]. A cache must not
/// outlive or be shared across domains with different topologies. Size is
/// bounded by [`PLAN_CACHE_MAX_SHAPES`].
#[derive(Default)]
pub struct PlanCache {
    /// Two-level map: ordered device set → [`PlanKey`] → cached plan. The
    /// outer level exists so the hit path can probe with the descriptor's
    /// borrowed `&[GpuId]` (via `Vec<GpuId>: Borrow<[GpuId]>`) and the inner
    /// key is all-`Copy` — a cache hit allocates nothing.
    shapes: Mutex<Shapes>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Default)]
struct Shapes {
    by_devices: HashMap<Vec<GpuId>, HashMap<PlanKey, CachedPlan>>,
    /// Total cached shapes across every device set (the eviction bound).
    total: usize,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The cached plan+program for `desc` as registered by `rank`, building,
    /// validating and compiling on the first request of a shape. Selection
    /// runs on every call (it is a pure function of the descriptor, topology
    /// and health view, and is part of the key).
    pub fn get_or_compile(
        &self,
        selector: &AlgorithmSelector,
        desc: &CollectiveDescriptor,
        rank: usize,
        chunk_elems: usize,
        topology: &Topology,
        health: &LinkHealth,
    ) -> Result<CachedPlan, CollectiveError> {
        let (kind, degraded) = selector.select_with_health(desc, topology, health);
        let channels = selector.channels_for(desc);
        let key = PlanKey {
            kind: desc.kind,
            count: desc.count,
            dtype: desc.dtype,
            op: desc.op,
            root: desc.root,
            rank,
            algorithm: kind,
            chunk_elems,
            channels,
            health_epoch: health.generation(),
        };
        {
            let shapes = self.shapes.lock();
            if let Some(cached) = shapes
                .by_devices
                .get(desc.devices.as_slice())
                .and_then(|inner| inner.get(&key))
            {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(cached.clone());
            }
        }
        // Build outside the lock: concurrent first registrations of one
        // shape may build twice, but registration never blocks behind
        // another shape's plan construction. Last insert wins.
        let plan =
            algorithm(kind).build_plan_striped(desc, rank, chunk_elems, channels, topology)?;
        plan.validate(rank, desc.num_ranks())?;
        let cached = CachedPlan {
            program: Arc::new(CompiledProgram::compile(&plan, desc.dtype)),
            plan: Arc::new(plan),
            degraded,
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.shapes.lock();
        let shapes = &mut *guard;
        if shapes.total >= PLAN_CACHE_MAX_SHAPES {
            // Evict an arbitrary shape: correctness is unaffected (it
            // recompiles on next use) and the common steady state — a
            // bounded set of hot shapes — never reaches this.
            if let Some(victim_devices) = shapes.by_devices.keys().next().cloned() {
                if let Some(inner) = shapes.by_devices.get_mut(&victim_devices) {
                    if let Some(victim) = inner.keys().next().copied() {
                        inner.remove(&victim);
                        shapes.total -= 1;
                    }
                    if inner.is_empty() {
                        shapes.by_devices.remove(&victim_devices);
                    }
                }
            }
        }
        let inner = shapes.by_devices.entry(desc.devices.clone()).or_default();
        if inner.insert(key, cached.clone()).is_none() {
            shapes.total += 1;
        }
        Ok(cached)
    }

    /// Drop every cached shape whose device set contains `gpu` — the elastic
    /// membership path: a removed rank's plans must never be served again,
    /// even if the rank later rejoins (its mesh is rebuilt lazily). Returns
    /// the number of shapes dropped.
    pub fn invalidate_device(&self, gpu: GpuId) -> usize {
        let mut guard = self.shapes.lock();
        let shapes = &mut *guard;
        let mut dropped = 0;
        shapes.by_devices.retain(|devices, inner| {
            if devices.contains(&gpu) {
                dropped += inner.len();
                false
            } else {
                true
            }
        });
        shapes.total -= dropped;
        dropped
    }

    /// Requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to build and compile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct shapes cached.
    pub fn len(&self) -> usize {
        self.shapes.lock().total
    }

    /// Whether the cache holds no shapes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redop::ReduceOp;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    fn all_reduce(count: usize, n: usize) -> CollectiveDescriptor {
        CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, gpus(n))
    }

    fn compile_striped(count: usize, n: usize, chunk: usize, k: usize) -> (Plan, CompiledProgram) {
        let desc = all_reduce(count, n);
        let topo = Topology::flat(n);
        let plan = algorithm(AlgorithmKind::Ring)
            .build_plan_striped(&desc, 0, chunk, k, &topo)
            .unwrap();
        plan.validate(0, n).unwrap();
        let program = CompiledProgram::compile(&plan, DataType::F32);
        (plan, program)
    }

    #[test]
    fn compile_preserves_order_and_resolves_edges() {
        let (plan, program) = compile_striped(64, 4, 4, 3);
        assert_eq!(program.len(), plan.len());
        assert_eq!(program.algorithm(), AlgorithmKind::Ring);
        assert_eq!(program.send_edges(), plan.send_edges());
        assert_eq!(program.recv_edges(), plan.recv_edges());
        for (instr, step) in program.instrs().iter().zip(&plan.steps) {
            assert_eq!(instr.kind, step.kind);
            assert_eq!(instr.channel, step.channel);
            assert_eq!(instr.chunk_index, step.chunk_index);
            if step.kind.has_send() {
                let edge = program.send_edges()[instr.send_conn as usize];
                assert_eq!(edge, (step.send_to.unwrap(), step.channel));
                assert_eq!(instr.send_peer as usize, step.send_to.unwrap());
            }
            if step.kind.has_recv() {
                let edge = program.recv_edges()[instr.recv_conn as usize];
                assert_eq!(edge, (step.recv_from.unwrap(), step.channel));
            }
            // Byte ranges are the element ranges scaled by the element size.
            assert_eq!(
                instr.src.map(|b| (b.off, b.len)),
                step.src.map(|r| (r.byte_offset(4), r.byte_len(4)))
            );
            assert_eq!(
                instr.dst.map(|b| (b.off, b.len)),
                step.dst.map(|r| (r.byte_offset(4), r.byte_len(4)))
            );
        }
    }

    #[test]
    fn lanes_partition_the_program_per_channel_in_plan_order() {
        let (plan, program) = compile_striped(60, 4, 2, 3);
        assert_eq!(program.lane_count(), 3, "3 channels used at this chunking");
        let mut seen = 0usize;
        for (li, lane) in program.lanes().iter().enumerate() {
            assert_eq!(lane.channel(), ChannelId(li as u32), "ascending channels");
            assert!(!lane.is_empty());
            seen += lane.len();
            let mut last = None;
            for &idx in lane.instr_ids() {
                let instr = program.instr(idx);
                assert_eq!(instr.channel, lane.channel(), "lane holds its channel");
                if let Some(prev) = last {
                    assert!(idx > prev, "lane preserves plan order");
                }
                last = Some(idx);
            }
        }
        assert_eq!(seen, plan.len(), "lanes partition every instruction");
    }

    #[test]
    fn phases_split_at_cross_lane_conflicts_and_gate_eligibility() {
        // Ring plans have no cross-lane recv-buffer dependencies (within one
        // chunk-major phase, dependencies connect steps of the same chunk —
        // the same lane): one phase, no barriers anywhere.
        let (_, ring) = compile_striped(60, 4, 2, 3);
        assert_eq!(ring.phase_count(), 1);
        for idx in 0..ring.len() as u32 {
            assert!(ring.instr_eligible(idx, &vec![0; ring.lane_count()]));
        }

        // A hierarchical plan with chunk-misaligned phases (odd count, so
        // the leader-ring sub-slices re-chunk the phase-1 partials across
        // lanes) must split: instructions of a later phase are gated until
        // every lane finishes the earlier ones.
        let desc = all_reduce(17, 6);
        let topo = Topology::uniform_cluster(2, 3);
        let plan = algorithm(AlgorithmKind::Hierarchical)
            .build_plan_striped(&desc, 0, 3, 2, &topo)
            .unwrap();
        plan.validate(0, 6).unwrap();
        let program = CompiledProgram::compile(&plan, DataType::F32);
        assert!(
            program.phase_count() >= 2,
            "chunk-misaligned hierarchical schedules are multi-phase"
        );
        let later = (0..program.len() as u32)
            .find(|&i| program.instr(i).phase > 0)
            .expect("a phase-1 instruction exists");
        let zeros = vec![0u32; program.lane_count()];
        assert!(
            !program.instr_eligible(later, &zeros),
            "later phases wait for every lane to finish the earlier ones"
        );
        // Once every lane's cursor passes the earlier phases, it unblocks.
        let done: Vec<u32> = program.lanes().iter().map(|l| l.len() as u32).collect();
        assert!(program.instr_eligible(later, &done));
    }

    #[test]
    fn send_conn_for_resolves_staged_channels() {
        let (_, program) = compile_striped(64, 4, 4, 2);
        for (i, &(p, c)) in program.send_edges().iter().enumerate() {
            assert_eq!(program.send_conn_for(p, c), Some(i as u32));
        }
        assert_eq!(program.send_conn_for(99, ChannelId(0)), None);
    }

    #[test]
    fn plan_cache_hits_on_identical_shapes_and_misses_on_different_ones() {
        let cache = PlanCache::new();
        let topo = Topology::flat(4);
        let sel = AlgorithmSelector::default();
        let health = LinkHealth::new();
        let a = cache
            .get_or_compile(&sel, &all_reduce(1 << 20, 4), 0, 1024, &topo, &health)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert!(!a.degraded);
        let b = cache
            .get_or_compile(&sel, &all_reduce(1 << 20, 4), 0, 1024, &topo, &health)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a.plan, &b.plan), "hits share the plan");
        assert!(
            Arc::ptr_eq(&a.program, &b.program),
            "hits share the program"
        );
        // A different rank, count or channel count is a different shape.
        cache
            .get_or_compile(&sel, &all_reduce(1 << 20, 4), 1, 1024, &topo, &health)
            .unwrap();
        cache
            .get_or_compile(&sel, &all_reduce(1 << 19, 4), 0, 1024, &topo, &health)
            .unwrap();
        cache
            .get_or_compile(
                &sel,
                &all_reduce(1 << 20, 4).with_channels(2),
                0,
                1024,
                &topo,
                &health,
            )
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 4));
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn plan_cache_misses_across_health_epochs_and_marks_degraded_plans() {
        use dfccl_transport::EdgeId;

        let cache = PlanCache::new();
        let topo = Topology::flat(4);
        let sel = AlgorithmSelector::default();
        let health = LinkHealth::new();
        let desc = all_reduce(1 << 20, 4); // bandwidth-bound -> ring
        let healthy = cache
            .get_or_compile(&sel, &desc, 0, 1024, &topo, &health)
            .unwrap();
        assert_eq!(healthy.plan.algorithm, AlgorithmKind::Ring);
        // Quarantine a ring edge: the next request is a *miss* (new epoch)
        // and selection degrades to the tree family.
        health.quarantine(EdgeId {
            src: GpuId(1),
            dst: GpuId(2),
            channel: ChannelId(0),
        });
        let degraded = cache
            .get_or_compile(&sel, &desc, 0, 1024, &topo, &health)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert!(degraded.degraded);
        assert_eq!(degraded.plan.algorithm, AlgorithmKind::DoubleBinaryTree);
        // Same epoch, same shape: served from cache, still marked degraded.
        let again = cache
            .get_or_compile(&sel, &desc, 0, 1024, &topo, &health)
            .unwrap();
        assert!(again.degraded);
        assert!(Arc::ptr_eq(&degraded.plan, &again.plan));
    }

    #[test]
    fn plan_cache_invalidate_device_drops_only_intersecting_shapes() {
        let cache = PlanCache::new();
        let topo = Topology::flat(6);
        let sel = AlgorithmSelector::default();
        let health = LinkHealth::new();
        cache
            .get_or_compile(&sel, &all_reduce(1 << 20, 4), 0, 1024, &topo, &health)
            .unwrap();
        cache
            .get_or_compile(&sel, &all_reduce(1 << 20, 4), 1, 1024, &topo, &health)
            .unwrap();
        let other = CollectiveDescriptor::all_reduce(
            1 << 20,
            DataType::F32,
            ReduceOp::Sum,
            vec![GpuId(4), GpuId(5)],
        );
        cache
            .get_or_compile(&sel, &other, 0, 1024, &topo, &health)
            .unwrap();
        assert_eq!(cache.len(), 3);
        // Removing GPU 2 drops both shapes over [0, 1, 2, 3], not the [4, 5] one.
        assert_eq!(cache.invalidate_device(GpuId(2)), 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.invalidate_device(GpuId(2)), 0);
        let hit = cache
            .get_or_compile(&sel, &other, 0, 1024, &topo, &health)
            .unwrap();
        assert!(!hit.degraded);
        assert_eq!(cache.hits(), 1, "surviving shape still serves hits");
    }

    #[test]
    fn plan_cache_surfaces_build_errors() {
        let cache = PlanCache::new();
        let topo = Topology::flat(4);
        let sel = AlgorithmSelector::default();
        let health = LinkHealth::new();
        // A strict per-collective override that cannot schedule the kind.
        let bad = CollectiveDescriptor::all_gather(16, DataType::F32, gpus(4))
            .with_algorithm(AlgorithmKind::DoubleBinaryTree);
        assert!(matches!(
            cache.get_or_compile(&sel, &bad, 0, 16, &topo, &health),
            Err(CollectiveError::UnsupportedAlgorithm { .. })
        ));
        assert!(cache.is_empty(), "errors are not cached");
    }

    #[test]
    fn bind_resolves_against_matching_channels_only() {
        use dfccl_transport::{Communicator, CommunicatorId, LinkModel};
        let (plan, program) = compile_striped(64, 4, 4, 2);
        let topo = Arc::new(Topology::flat(4));
        let comm = Communicator::new(
            CommunicatorId(0),
            gpus(4),
            &topo,
            &Arc::new(LinkModel::zero_cost()),
            4,
        )
        .unwrap();
        let channels = comm
            .channels(0, plan.send_edges(), plan.recv_edges())
            .unwrap();
        let table = program.bind(&channels).unwrap();
        assert_eq!(table.send_len(), program.send_edges().len());
        assert_eq!(table.recv_len(), program.recv_edges().len());
        // Channels built for a different edge set fail to bind.
        let wrong = comm.channels(0, &[(2, ChannelId(0))], &[]).unwrap();
        assert!(matches!(
            program.bind(&wrong),
            Err(TransportError::MissingEdge { .. })
        ));
    }
}
