//! Double-binary-tree schedules: latency-optimal all-reduce and broadcast.
//!
//! Ring schedules are bandwidth-optimal but pay `O(n)` per-message latencies;
//! for small payloads the latency term dominates and a tree with `O(log n)`
//! hops wins (the standard NCCL design point; see the GPU-centric
//! communication survey). This module builds the classic *double* binary
//! tree: the data is split in two halves, each scheduled over its own binary
//! tree, with the trees chosen so that a rank that is internal in one tree is
//! a leaf in the other — no rank does double duty.
//!
//! * **Tree shape** — a heap-ordered binary tree over rank positions
//!   (`parent(p) = (p-1)/2`, children `2p+1`, `2p+2`), which is defined for
//!   any rank count, including non-powers of two.
//! * **All-reduce** — tree 0 is the heap tree over ranks `0..n`, tree 1 the
//!   mirrored heap tree over `n-1..0`; a node internal in one is a leaf in
//!   the other. Each half flows up its tree (reduce) and back down
//!   (broadcast). Partial sums accumulate in the recv buffer via
//!   [`SrcBuf::Recv`] operands.
//! * **Broadcast** — both trees are rooted at the descriptor root (ascending
//!   and descending rank orders), each carrying half the data.
//!
//! Ordering: one monotone step counter spans both trees, and the final plan
//! is sorted chunk-major, yielding `(chunk, tree, step)` order on every rank.
//! Matched send/recv pairs agree on `(chunk, tree)` and every directed edge
//! carries at most one message per `(chunk, tree)`, so connector FIFO order
//! is consistent and the schedule is deadlock-free even with 1-slot
//! connectors: a blocked rank always waits on a peer positioned no later in
//! the shared `(chunk, tree)` order, and within one `(chunk, tree)` section
//! the dependency graph is the (acyclic) tree itself.

use crate::chunk::{slice_ranges, ElemRange};
use crate::collective::{CollectiveDescriptor, CollectiveKind};
use crate::plan::{
    check_builder_inputs, push_chunked, sort_chunk_major, Algorithm, AlgorithmKind, Plan,
};
use crate::primitive::{PrimitiveKind, PrimitiveStep, SrcBuf};
use crate::CollectiveError;
use dfccl_transport::Topology;

/// The double-binary-tree schedule generator.
pub struct DoubleBinaryTreeAlgorithm;

impl Algorithm for DoubleBinaryTreeAlgorithm {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::DoubleBinaryTree
    }

    fn supports(&self, desc: &CollectiveDescriptor, _topology: &Topology) -> bool {
        matches!(
            desc.kind,
            CollectiveKind::AllReduce | CollectiveKind::Broadcast
        )
    }

    fn build_plan_striped(
        &self,
        desc: &CollectiveDescriptor,
        rank: usize,
        max_chunk_elems: usize,
        channels: usize,
        _topology: &Topology,
    ) -> Result<Plan, CollectiveError> {
        check_builder_inputs(desc, rank, max_chunk_elems, channels)?;
        let n = desc.num_ranks();
        let trees = match desc.kind {
            CollectiveKind::AllReduce => [
                (0..n).collect::<Vec<usize>>(),
                (0..n).rev().collect::<Vec<usize>>(),
            ],
            CollectiveKind::Broadcast => {
                let root = desc.root.expect("validated root");
                [
                    (0..n).map(|i| (root + i) % n).collect(),
                    (0..n).map(|i| (root + n - i) % n).collect(),
                ]
            }
            other => {
                return Err(CollectiveError::UnsupportedAlgorithm {
                    algorithm: AlgorithmKind::DoubleBinaryTree,
                    kind: other,
                })
            }
        };
        let halves = slice_ranges(desc.count, 2);
        let mut steps = Vec::new();
        let mut step = 0u32;
        for (order, half) in trees.iter().zip(halves) {
            let node = TreeNode::locate(order, rank);
            match desc.kind {
                CollectiveKind::AllReduce => emit_all_reduce(
                    &mut steps,
                    &node,
                    half,
                    &mut step,
                    max_chunk_elems,
                    channels,
                ),
                CollectiveKind::Broadcast => emit_broadcast(
                    &mut steps,
                    &node,
                    half,
                    &mut step,
                    max_chunk_elems,
                    channels,
                ),
                _ => unreachable!("filtered above"),
            }
        }
        sort_chunk_major(&mut steps);
        Ok(Plan::new(AlgorithmKind::DoubleBinaryTree, steps))
    }
}

/// A rank's place in one heap-ordered tree: its parent and children ranks.
struct TreeNode {
    parent: Option<usize>,
    children: Vec<usize>,
}

impl TreeNode {
    /// Locate `rank` in the heap tree over `order` (`order[0]` is the root).
    fn locate(order: &[usize], rank: usize) -> TreeNode {
        let n = order.len();
        let p = order
            .iter()
            .position(|&r| r == rank)
            .expect("rank participates in the tree");
        let parent = (p > 0).then(|| order[(p - 1) / 2]);
        let children = [2 * p + 1, 2 * p + 2]
            .into_iter()
            .filter(|&c| c < n)
            .map(|c| order[c])
            .collect();
        TreeNode { parent, children }
    }
}

/// Emit one tree's all-reduce round trip over `half` for this node: reduce up
/// towards the root, then broadcast the result back down.
fn emit_all_reduce(
    out: &mut Vec<PrimitiveStep>,
    node: &TreeNode,
    half: ElemRange,
    step: &mut u32,
    max_chunk: usize,
    channels: usize,
) {
    let mut emit = |kind, src, src_buf, dst, send_to, recv_from| {
        push_chunked(
            out, kind, src, src_buf, dst, send_to, recv_from, *step, max_chunk, channels,
        );
        *step += 1;
    };

    // Up phase: fold the children's partial sums into the recv buffer, then
    // forward the subtree sum to the parent.
    for (i, &child) in node.children.iter().enumerate() {
        // The first reduction pairs the incoming chunk with this rank's
        // original contribution (send buffer); later ones accumulate onto the
        // partial already in the recv buffer.
        let operand = if i == 0 { SrcBuf::Send } else { SrcBuf::Recv };
        emit(
            PrimitiveKind::RecvReduceCopy,
            Some(half),
            operand,
            Some(half),
            None,
            Some(child),
        );
    }
    if let Some(parent) = node.parent {
        let (kind, src_buf) = if node.children.is_empty() {
            // A leaf forwards its original contribution.
            (PrimitiveKind::Send, SrcBuf::Send)
        } else {
            // An internal node forwards the accumulated subtree sum.
            (PrimitiveKind::Send, SrcBuf::Recv)
        };
        emit(kind, Some(half), src_buf, None, Some(parent), None);
    }

    // Down phase: the root already holds the full sum in its recv buffer;
    // everyone else receives it from the parent and fans it out.
    if let Some(parent) = node.parent {
        if let Some((&first, rest)) = node.children.split_first() {
            emit(
                PrimitiveKind::RecvCopySend,
                None,
                SrcBuf::Send,
                Some(half),
                Some(first),
                Some(parent),
            );
            for &child in rest {
                emit(
                    PrimitiveKind::Send,
                    Some(half),
                    SrcBuf::Recv,
                    None,
                    Some(child),
                    None,
                );
            }
        } else {
            emit(
                PrimitiveKind::Recv,
                None,
                SrcBuf::Send,
                Some(half),
                None,
                Some(parent),
            );
        }
    } else {
        for &child in &node.children {
            emit(
                PrimitiveKind::Send,
                Some(half),
                SrcBuf::Recv,
                None,
                Some(child),
                None,
            );
        }
    }
}

/// Emit one tree's broadcast over `half` for this node: the root copies its
/// contribution locally and sends down; inner nodes forward; leaves receive.
fn emit_broadcast(
    out: &mut Vec<PrimitiveStep>,
    node: &TreeNode,
    half: ElemRange,
    step: &mut u32,
    max_chunk: usize,
    channels: usize,
) {
    let mut emit = |kind, src, src_buf, dst, send_to, recv_from| {
        push_chunked(
            out, kind, src, src_buf, dst, send_to, recv_from, *step, max_chunk, channels,
        );
        *step += 1;
    };

    let Some(parent) = node.parent else {
        // Root: own output, then fan out from the send buffer.
        emit(
            PrimitiveKind::Copy,
            Some(half),
            SrcBuf::Send,
            Some(half),
            None,
            None,
        );
        for &child in &node.children {
            emit(
                PrimitiveKind::Send,
                Some(half),
                SrcBuf::Send,
                None,
                Some(child),
                None,
            );
        }
        return;
    };
    if let Some((&first, rest)) = node.children.split_first() {
        emit(
            PrimitiveKind::RecvCopySend,
            None,
            SrcBuf::Send,
            Some(half),
            Some(first),
            Some(parent),
        );
        for &child in rest {
            emit(
                PrimitiveKind::Send,
                Some(half),
                SrcBuf::Recv,
                None,
                Some(child),
                None,
            );
        }
    } else {
        emit(
            PrimitiveKind::Recv,
            None,
            SrcBuf::Send,
            Some(half),
            None,
            Some(parent),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::redop::ReduceOp;
    use gpu_sim::GpuId;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    fn flat(n: usize) -> Topology {
        Topology::flat(n)
    }

    #[test]
    fn supports_all_reduce_and_broadcast_only() {
        let a = DoubleBinaryTreeAlgorithm;
        let topo = flat(4);
        let ar = CollectiveDescriptor::all_reduce(8, DataType::F32, ReduceOp::Sum, gpus(4));
        let bc = CollectiveDescriptor::broadcast(8, DataType::F32, 0, gpus(4));
        let ag = CollectiveDescriptor::all_gather(8, DataType::F32, gpus(4));
        assert!(a.supports(&ar, &topo));
        assert!(a.supports(&bc, &topo));
        assert!(!a.supports(&ag, &topo));
        assert!(matches!(
            a.build_plan(&ag, 0, 64, &topo),
            Err(CollectiveError::UnsupportedAlgorithm { .. })
        ));
    }

    #[test]
    fn heap_tree_shape_is_consistent() {
        let order: Vec<usize> = (0..7).collect();
        let root = TreeNode::locate(&order, 0);
        assert_eq!(root.parent, None);
        assert_eq!(root.children, vec![1, 2]);
        let mid = TreeNode::locate(&order, 2);
        assert_eq!(mid.parent, Some(0));
        assert_eq!(mid.children, vec![5, 6]);
        let leaf = TreeNode::locate(&order, 5);
        assert_eq!(leaf.parent, Some(2));
        assert!(leaf.children.is_empty());
    }

    #[test]
    fn internal_in_one_tree_means_leaf_in_the_other() {
        // The double-tree property that balances work across ranks.
        for n in 2..=9usize {
            let t0: Vec<usize> = (0..n).collect();
            let t1: Vec<usize> = (0..n).rev().collect();
            for r in 0..n {
                let in_t0 = !TreeNode::locate(&t0, r).children.is_empty();
                let in_t1 = !TreeNode::locate(&t1, r).children.is_empty();
                assert!(
                    !(in_t0 && in_t1),
                    "rank {r} of {n} is internal in both trees"
                );
            }
        }
    }

    #[test]
    fn all_reduce_plans_are_chunk_major_and_peer_consistent() {
        for n in [2usize, 3, 5, 8] {
            let desc = CollectiveDescriptor::all_reduce(64, DataType::F32, ReduceOp::Sum, gpus(n));
            let topo = flat(n);
            for rank in 0..n {
                let plan = DoubleBinaryTreeAlgorithm
                    .build_plan(&desc, rank, 8, &topo)
                    .unwrap();
                plan.validate(rank, n).unwrap();
                let order: Vec<(u32, u32)> =
                    plan.steps.iter().map(|p| (p.chunk_index, p.step)).collect();
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(order, sorted, "n={n} rank={rank} not chunk-major");
            }
        }
    }

    #[test]
    fn tree_peers_are_not_ring_neighbours_in_general() {
        let n = 8;
        let desc = CollectiveDescriptor::all_reduce(16, DataType::F32, ReduceOp::Sum, gpus(n));
        let topo = flat(n);
        let plan = DoubleBinaryTreeAlgorithm
            .build_plan(&desc, 0, 1024, &topo)
            .unwrap();
        // Rank 0 is the root of tree 0 (children 1, 2) and a node of the
        // mirrored tree; it must talk to rank 2, which a ring never does.
        assert!(plan.send_peers().contains(&2));
    }

    #[test]
    fn broadcast_trees_are_rooted_at_the_descriptor_root() {
        let n = 6;
        let root = 4;
        let desc = CollectiveDescriptor::broadcast(32, DataType::F32, root, gpus(n));
        let topo = flat(n);
        let root_plan = DoubleBinaryTreeAlgorithm
            .build_plan(&desc, root, 1024, &topo)
            .unwrap();
        // The root never receives — it only copies locally and sends.
        assert!(root_plan.recv_peers().is_empty());
        assert!(!root_plan.send_peers().is_empty());
        // Every other rank receives at least once.
        for rank in (0..n).filter(|&r| r != root) {
            let plan = DoubleBinaryTreeAlgorithm
                .build_plan(&desc, rank, 1024, &topo)
                .unwrap();
            assert!(!plan.recv_peers().is_empty(), "rank {rank}");
        }
    }

    #[test]
    fn two_rank_tree_degenerates_to_a_send_recv_pair() {
        let desc = CollectiveDescriptor::all_reduce(8, DataType::F32, ReduceOp::Sum, gpus(2));
        let topo = flat(2);
        let p0 = DoubleBinaryTreeAlgorithm
            .build_plan(&desc, 0, 1024, &topo)
            .unwrap();
        let p1 = DoubleBinaryTreeAlgorithm
            .build_plan(&desc, 1, 1024, &topo)
            .unwrap();
        // Each rank is root of one tree and leaf of the other.
        assert_eq!(p0.send_peers(), vec![1]);
        assert_eq!(p0.recv_peers(), vec![1]);
        assert_eq!(p1.send_peers(), vec![0]);
        assert_eq!(p1.recv_peers(), vec![0]);
    }
}
