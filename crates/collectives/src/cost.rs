//! Deterministic plan-cost estimation: the modelled completion time of a set
//! of per-rank plans over a link model.
//!
//! The runtime charges link costs by busy-spinning in the sending rank's
//! thread, so measured wall-clock times need as many cores as ranks to show
//! an algorithm's real shape — on smaller machines every schedule degrades
//! towards the sum of its transfer costs. This module computes the same
//! quantity analytically: an event-driven walk of the plans that advances a
//! per-rank clock, charges `alpha + bytes/beta` per hop on the sender (the
//! [`crate::executor`] charging discipline) and makes each chunk visible to
//! its receiver at the sender's post-charge clock. The result is the modelled
//! critical path — deterministic, independent of host core count, and
//! exactly the quantity the ring/tree crossover of Fig. 8 is about.
//!
//! Connector capacity is not modelled (plans are chunk-major, so the
//! in-flight window is O(1) and capacity shifts all algorithms equally).

use std::collections::{HashMap, VecDeque};

use dfccl_transport::{LinkModel, Topology, TransportError};
use gpu_sim::GpuId;

use crate::datatype::DataType;
use crate::plan::Plan;
use crate::CollectiveError;

/// Errors from cost estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// A plan step addressed a GPU pair the topology cannot classify.
    Transport(TransportError),
    /// The plans never reach completion (a cyclic schedule): `stalled` ranks
    /// still had steps left when no progress was possible.
    Stalled { stalled: usize },
    /// Plan-level inconsistency.
    Collective(CollectiveError),
}

impl From<TransportError> for CostError {
    fn from(e: TransportError) -> Self {
        CostError::Transport(e)
    }
}

/// Modelled completion time, in (unscaled) nanoseconds, of running `plans`
/// (one per rank, in rank order over `devices`) with `dtype` elements.
pub fn estimate_completion_ns(
    plans: &[Plan],
    devices: &[GpuId],
    topology: &Topology,
    link: &LinkModel,
    dtype: DataType,
) -> Result<f64, CostError> {
    let n = plans.len();
    let elem = dtype.size_bytes();
    // Per-rank clocks and cursors.
    let mut clock = vec![0.0f64; n];
    let mut cursor = vec![0usize; n];
    // Per directed edge: FIFO of message-visible times.
    let mut edges: HashMap<(usize, usize), VecDeque<f64>> = HashMap::new();

    loop {
        let mut progressed = false;
        let mut remaining = 0usize;
        for r in 0..n {
            // Drain as many of rank r's steps as are currently executable.
            while cursor[r] < plans[r].steps.len() {
                let step = &plans[r].steps[cursor[r]];
                let mut t = clock[r];
                if let Some(src) = step.recv_from {
                    match edges.get_mut(&(src, r)).and_then(|q| q.front().copied()) {
                        Some(avail) => t = t.max(avail),
                        None => break, // input not produced yet
                    }
                    edges.get_mut(&(src, r)).unwrap().pop_front();
                }
                if let Some(dst) = step.send_to {
                    let bytes = step.elems() * elem;
                    let class = topology.link_between(devices[r], devices[dst])?;
                    t += link.params(class).transfer_nanos(bytes);
                    edges.entry((r, dst)).or_default().push_back(t);
                }
                clock[r] = t;
                cursor[r] += 1;
                progressed = true;
            }
            if cursor[r] < plans[r].steps.len() {
                remaining += 1;
            }
        }
        if remaining == 0 {
            return Ok(clock.iter().copied().fold(0.0, f64::max));
        }
        if !progressed {
            return Err(CostError::Stalled { stalled: remaining });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveDescriptor;
    use crate::plan::{algorithm, AlgorithmKind};
    use crate::redop::ReduceOp;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    fn plans_for(
        desc: &CollectiveDescriptor,
        algo: AlgorithmKind,
        topo: &Topology,
        chunk: usize,
    ) -> Vec<Plan> {
        (0..desc.num_ranks())
            .map(|r| algorithm(algo).build_plan(desc, r, chunk, topo).unwrap())
            .collect()
    }

    #[test]
    fn estimate_scales_with_payload() {
        let n = 4;
        let topo = Topology::flat(n);
        let link = LinkModel::table2_testbed();
        let small = CollectiveDescriptor::all_reduce(64, DataType::F32, ReduceOp::Sum, gpus(n));
        let large =
            CollectiveDescriptor::all_reduce(1 << 20, DataType::F32, ReduceOp::Sum, gpus(n));
        let t_small = estimate_completion_ns(
            &plans_for(&small, AlgorithmKind::Ring, &topo, 8 * 1024),
            &gpus(n),
            &topo,
            &link,
            DataType::F32,
        )
        .unwrap();
        let t_large = estimate_completion_ns(
            &plans_for(&large, AlgorithmKind::Ring, &topo, 8 * 1024),
            &gpus(n),
            &topo,
            &link,
            DataType::F32,
        )
        .unwrap();
        assert!(t_large > 10.0 * t_small, "{t_small} vs {t_large}");
    }

    #[test]
    fn ring_estimate_grows_with_rank_count_at_fixed_payload() {
        // The O(n) latency term the tree schedule removes.
        let link = LinkModel::table2_testbed();
        let t = |n: usize| {
            let topo = Topology::flat(n);
            let desc = CollectiveDescriptor::all_reduce(64, DataType::F32, ReduceOp::Sum, gpus(n));
            estimate_completion_ns(
                &plans_for(&desc, AlgorithmKind::Ring, &topo, 1024),
                &gpus(n),
                &topo,
                &link,
                DataType::F32,
            )
            .unwrap()
        };
        assert!(t(8) > 1.5 * t(4));
    }

    #[test]
    fn pairwise_all_to_all_estimate_scales_with_peer_count_and_payload() {
        // The pairwise all-to-all moves (n-1) * count elements per rank over
        // n(n-1) mesh edges; the modelled completion must grow with both the
        // per-peer payload and the rank count.
        let link = LinkModel::table2_testbed();
        let t = |n: usize, count: usize| {
            let topo = Topology::flat(n);
            let desc = CollectiveDescriptor::all_to_all(count, DataType::F32, gpus(n));
            estimate_completion_ns(
                &plans_for(&desc, AlgorithmKind::Pairwise, &topo, 1024),
                &gpus(n),
                &topo,
                &link,
                DataType::F32,
            )
            .unwrap()
        };
        assert!(t(4, 1 << 16) > 4.0 * t(4, 1 << 12));
        assert!(t(8, 1 << 12) > 1.5 * t(4, 1 << 12));
    }

    #[test]
    fn stalled_plans_are_reported_not_looped() {
        // A single plan that receives a message nobody sends.
        use crate::chunk::ElemRange;
        use crate::primitive::{PrimitiveKind, PrimitiveStep, SrcBuf};
        let plan = Plan::new(
            AlgorithmKind::Ring,
            vec![PrimitiveStep {
                kind: PrimitiveKind::Recv,
                src: None,
                src_buf: SrcBuf::Send,
                dst: Some(ElemRange::new(0, 1)),
                send_to: None,
                recv_from: Some(1),
                chunk_index: 0,
                step: 0,
            }],
        );
        let idle = Plan::new(AlgorithmKind::Ring, Vec::new());
        let topo = Topology::flat(2);
        let err = estimate_completion_ns(
            &[plan, idle],
            &gpus(2),
            &topo,
            &LinkModel::zero_cost(),
            DataType::F32,
        )
        .unwrap_err();
        assert_eq!(err, CostError::Stalled { stalled: 1 });
    }
}
