//! Deterministic plan-cost estimation: the modelled completion time of a set
//! of per-rank plans over a link model.
//!
//! The runtime charges link costs by busy-spinning in the sending rank's
//! thread, so measured wall-clock times need as many cores as ranks to show
//! an algorithm's real shape — on smaller machines every schedule degrades
//! towards the sum of its transfer costs. This module computes the same
//! quantity analytically: an event-driven walk of the plans that advances a
//! per-rank clock, charges `alpha + bytes/beta` per hop on the sender (the
//! [`crate::executor`] charging discipline) and makes each chunk visible to
//! its receiver at the sender's post-charge clock. The result is the modelled
//! critical path — deterministic, independent of host core count, and
//! exactly the quantity the ring/tree crossover of Fig. 8 is about.
//!
//! Connector capacity is not modelled (plans are chunk-major, so the
//! in-flight window is O(1) and capacity shifts all algorithms equally).
//!
//! ## Channels
//!
//! A striped plan's channels are modelled as parallel *lanes*: each rank's
//! plan is split into its per-channel subsequences and every `(rank,
//! channel)` lane advances its own clock, the way NCCL drives each channel
//! from its own thread block (and each channel's connector carries only its
//! own chunks). A single channel cannot saturate a fat link — the per-chunk
//! `alpha + bytes/beta` charge serialises on one lane — so striping across K
//! lanes raises modelled aggregate bandwidth and moves the latency/bandwidth
//! crossover, which is exactly the effect `perf_algorithms`' `channels_sweep`
//! panel tracks.

use std::collections::{HashMap, VecDeque};

use dfccl_transport::{ChannelId, EdgeId, LinkHealth, LinkModel, Topology, TransportError};
use gpu_sim::GpuId;

use crate::datatype::DataType;
use crate::plan::Plan;
use crate::primitive::PrimitiveStep;
use crate::CollectiveError;

/// Errors from cost estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// A plan step addressed a GPU pair the topology cannot classify.
    Transport(TransportError),
    /// The plans never reach completion (a cyclic schedule): `stalled` ranks
    /// still had steps left when no progress was possible.
    Stalled { stalled: usize },
    /// Plan-level inconsistency.
    Collective(CollectiveError),
}

impl From<TransportError> for CostError {
    fn from(e: TransportError) -> Self {
        CostError::Transport(e)
    }
}

/// Modelled completion time, in (unscaled) nanoseconds, of running `plans`
/// (one per rank, in rank order over `devices`) with `dtype` elements.
/// Channels are independent lanes (see the module docs): a `(rank, channel)`
/// lane advances its own clock, and each directed `(src, dst, channel)` edge
/// carries its own message FIFO.
pub fn estimate_completion_ns(
    plans: &[Plan],
    devices: &[GpuId],
    topology: &Topology,
    link: &LinkModel,
    dtype: DataType,
) -> Result<f64, CostError> {
    estimate_completion_ns_with_health(plans, devices, topology, link, dtype, None)
}

/// [`estimate_completion_ns`] constrained by a link-health map: a send over a
/// quarantined `(src, dst, channel)` edge can never complete, so its lane —
/// and every lane waiting on it — stalls, and the estimate reports
/// [`CostError::Stalled`] instead of a finite time. This is what lets the
/// recovery layer *prove* a candidate re-plan avoids the dead edges before
/// resubmitting it: a plan that estimates finite under the current health map
/// touches no quarantined edge.
pub fn estimate_completion_ns_with_health(
    plans: &[Plan],
    devices: &[GpuId],
    topology: &Topology,
    link: &LinkModel,
    dtype: DataType,
    health: Option<&LinkHealth>,
) -> Result<f64, CostError> {
    let elem = dtype.size_bytes();
    let health = health.filter(|h| !h.is_clean());
    // One lane per (rank, channel): the channel's subsequence of the rank's
    // plan, in plan order.
    let mut lanes: Vec<(usize, Vec<&PrimitiveStep>)> = Vec::new();
    for (r, plan) in plans.iter().enumerate() {
        let mut by_channel: HashMap<ChannelId, Vec<&PrimitiveStep>> = HashMap::new();
        for step in &plan.steps {
            by_channel.entry(step.channel).or_default().push(step);
        }
        let mut channels: Vec<ChannelId> = by_channel.keys().copied().collect();
        channels.sort_unstable();
        for c in channels {
            lanes.push((r, by_channel.remove(&c).expect("channel collected")));
        }
    }

    let mut clock = vec![0.0f64; lanes.len()];
    let mut cursor = vec![0usize; lanes.len()];
    // Per directed (src, dst, channel) edge: FIFO of message-visible times.
    let mut edges: HashMap<(usize, usize, ChannelId), VecDeque<f64>> = HashMap::new();

    loop {
        let mut progressed = false;
        let mut remaining = 0usize;
        for (l, (r, steps)) in lanes.iter().enumerate() {
            let r = *r;
            // Drain as many of this lane's steps as are currently executable.
            while cursor[l] < steps.len() {
                let step = steps[cursor[l]];
                let mut t = clock[l];
                if let Some(src) = step.recv_from {
                    let key = (src, r, step.channel);
                    match edges.get_mut(&key).and_then(|q| q.front().copied()) {
                        Some(avail) => t = t.max(avail),
                        None => break, // input not produced yet
                    }
                    edges.get_mut(&key).unwrap().pop_front();
                }
                if let Some(dst) = step.send_to {
                    if health.is_some_and(|h| {
                        h.is_dead(EdgeId {
                            src: devices[r],
                            dst: devices[dst],
                            channel: step.channel,
                        })
                    }) {
                        break; // the edge can never deliver: the lane stalls
                    }
                    let bytes = step.elems() * elem;
                    let class = topology.link_between(devices[r], devices[dst])?;
                    t += link.params(class).transfer_nanos(bytes);
                    edges
                        .entry((r, dst, step.channel))
                        .or_default()
                        .push_back(t);
                }
                clock[l] = t;
                cursor[l] += 1;
                progressed = true;
            }
            if cursor[l] < steps.len() {
                remaining += 1;
            }
        }
        if remaining == 0 {
            return Ok(clock.iter().copied().fold(0.0, f64::max));
        }
        if !progressed {
            return Err(CostError::Stalled { stalled: remaining });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveDescriptor;
    use crate::plan::{algorithm, AlgorithmKind};
    use crate::redop::ReduceOp;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    fn plans_for(
        desc: &CollectiveDescriptor,
        algo: AlgorithmKind,
        topo: &Topology,
        chunk: usize,
    ) -> Vec<Plan> {
        (0..desc.num_ranks())
            .map(|r| algorithm(algo).build_plan(desc, r, chunk, topo).unwrap())
            .collect()
    }

    #[test]
    fn estimate_scales_with_payload() {
        let n = 4;
        let topo = Topology::flat(n);
        let link = LinkModel::table2_testbed();
        let small = CollectiveDescriptor::all_reduce(64, DataType::F32, ReduceOp::Sum, gpus(n));
        let large =
            CollectiveDescriptor::all_reduce(1 << 20, DataType::F32, ReduceOp::Sum, gpus(n));
        let t_small = estimate_completion_ns(
            &plans_for(&small, AlgorithmKind::Ring, &topo, 8 * 1024),
            &gpus(n),
            &topo,
            &link,
            DataType::F32,
        )
        .unwrap();
        let t_large = estimate_completion_ns(
            &plans_for(&large, AlgorithmKind::Ring, &topo, 8 * 1024),
            &gpus(n),
            &topo,
            &link,
            DataType::F32,
        )
        .unwrap();
        assert!(t_large > 10.0 * t_small, "{t_small} vs {t_large}");
    }

    #[test]
    fn ring_estimate_grows_with_rank_count_at_fixed_payload() {
        // The O(n) latency term the tree schedule removes.
        let link = LinkModel::table2_testbed();
        let t = |n: usize| {
            let topo = Topology::flat(n);
            let desc = CollectiveDescriptor::all_reduce(64, DataType::F32, ReduceOp::Sum, gpus(n));
            estimate_completion_ns(
                &plans_for(&desc, AlgorithmKind::Ring, &topo, 1024),
                &gpus(n),
                &topo,
                &link,
                DataType::F32,
            )
            .unwrap()
        };
        assert!(t(8) > 1.5 * t(4));
    }

    #[test]
    fn pairwise_all_to_all_estimate_scales_with_peer_count_and_payload() {
        // The pairwise all-to-all moves (n-1) * count elements per rank over
        // n(n-1) mesh edges; the modelled completion must grow with both the
        // per-peer payload and the rank count.
        let link = LinkModel::table2_testbed();
        let t = |n: usize, count: usize| {
            let topo = Topology::flat(n);
            let desc = CollectiveDescriptor::all_to_all(count, DataType::F32, gpus(n));
            estimate_completion_ns(
                &plans_for(&desc, AlgorithmKind::Pairwise, &topo, 1024),
                &gpus(n),
                &topo,
                &link,
                DataType::F32,
            )
            .unwrap()
        };
        assert!(t(4, 1 << 16) > 4.0 * t(4, 1 << 12));
        assert!(t(8, 1 << 12) > 1.5 * t(4, 1 << 12));
    }

    #[test]
    fn striping_raises_modelled_bandwidth_on_large_payloads() {
        // Each channel is an independent lane, so a bandwidth-bound ring
        // all-reduce striped over 4 channels must finish well ahead of the
        // single-channel schedule, while K = 1 reproduces the unstriped
        // estimate bit for bit.
        let n = 4;
        let topo = Topology::flat(n);
        let link = LinkModel::table2_testbed();
        let desc = CollectiveDescriptor::all_reduce(1 << 18, DataType::F32, ReduceOp::Sum, gpus(n));
        let t = |k: usize| {
            let plans: Vec<Plan> = (0..n)
                .map(|r| {
                    algorithm(AlgorithmKind::Ring)
                        .build_plan_striped(&desc, r, 4 * 1024, k, &topo)
                        .unwrap()
                })
                .collect();
            estimate_completion_ns(&plans, &gpus(n), &topo, &link, DataType::F32).unwrap()
        };
        let unstriped = estimate_completion_ns(
            &plans_for(&desc, AlgorithmKind::Ring, &topo, 4 * 1024),
            &gpus(n),
            &topo,
            &link,
            DataType::F32,
        )
        .unwrap();
        assert_eq!(t(1), unstriped, "K = 1 must match the unstriped estimate");
        assert!(
            t(4) < 0.5 * t(1),
            "4 lanes must cut the bandwidth-bound completion: {} vs {}",
            t(4),
            t(1)
        );
    }

    #[test]
    fn dead_edges_stall_the_estimate_until_avoided() {
        use dfccl_transport::LinkHealth;

        let n = 4;
        let topo = Topology::flat(n);
        let link = LinkModel::table2_testbed();
        let desc = CollectiveDescriptor::all_reduce(64, DataType::F32, ReduceOp::Sum, gpus(n));
        let ring = plans_for(&desc, AlgorithmKind::Ring, &topo, 1024);
        let health = LinkHealth::new();
        // Clean health reproduces the unconstrained estimate bit for bit.
        let base = estimate_completion_ns(&ring, &gpus(n), &topo, &link, DataType::F32).unwrap();
        let clean = estimate_completion_ns_with_health(
            &ring,
            &gpus(n),
            &topo,
            &link,
            DataType::F32,
            Some(&health),
        )
        .unwrap();
        assert_eq!(base, clean);
        // Quarantine a ring edge: the ring schedule can no longer complete.
        health.quarantine(EdgeId {
            src: GpuId(1),
            dst: GpuId(2),
            channel: ChannelId(0),
        });
        let err = estimate_completion_ns_with_health(
            &ring,
            &gpus(n),
            &topo,
            &link,
            DataType::F32,
            Some(&health),
        )
        .unwrap_err();
        assert!(matches!(err, CostError::Stalled { .. }), "{err:?}");
        // The tree family avoids the quarantined edge and stays finite.
        let tree = plans_for(&desc, AlgorithmKind::DoubleBinaryTree, &topo, 1024);
        estimate_completion_ns_with_health(
            &tree,
            &gpus(n),
            &topo,
            &link,
            DataType::F32,
            Some(&health),
        )
        .unwrap();
    }

    #[test]
    fn stalled_plans_are_reported_not_looped() {
        // A single plan that receives a message nobody sends.
        use crate::chunk::ElemRange;
        use crate::primitive::{PrimitiveKind, PrimitiveStep, SrcBuf};
        let plan = Plan::new(
            AlgorithmKind::Ring,
            vec![PrimitiveStep {
                kind: PrimitiveKind::Recv,
                src: None,
                src_buf: SrcBuf::Send,
                dst: Some(ElemRange::new(0, 1)),
                send_to: None,
                recv_from: Some(1),
                chunk_index: 0,
                step: 0,
                channel: ChannelId(0),
            }],
        );
        let idle = Plan::new(AlgorithmKind::Ring, Vec::new());
        let topo = Topology::flat(2);
        let err = estimate_completion_ns(
            &[plan, idle],
            &gpus(2),
            &topo,
            &LinkModel::zero_cost(),
            DataType::F32,
        )
        .unwrap_err();
        assert_eq!(err, CostError::Stalled { stalled: 1 });
    }
}
