//! Iteration-graph IR and the DDP-style small-all-reduce fusion pass.
//!
//! Training traffic is the same per-step collective sequence replayed
//! millions of times. Graph capture records that sequence once — descriptor,
//! buffers and submission order per collective — and the fusion pass rewrites
//! it at compile time before the runtime pre-resolves plans and programs for
//! replay:
//!
//! * [`RecordedCollective`] — one captured invocation (id, descriptor and the
//!   buffers it was recorded with; replay re-executes over the *same*
//!   buffers, the CUDA-Graph fixed-address contract).
//! * [`GraphOp`] — one node of the rewritten graph: an unchanged single
//!   collective, or a [`FusedAllReduce`] coalescing a bucket of consecutive
//!   small all-reduces.
//! * [`plan_fusion`] — the pass. It is a pure, deterministic function of the
//!   recorded sequence and the threshold, so SPMD ranks that capture the
//!   same iteration independently produce the same bucketization and the
//!   same synthesized fused collective ids — a requirement, because ranks
//!   resolve communicators by collective id.
//!
//! ## Fusion legality
//!
//! Two adjacent recorded collectives may share a bucket iff both are
//! all-reduces over the same ordered device set with the same element type,
//! operator, priority and per-collective algorithm/channel overrides, each at
//! most `fusion_threshold_bytes` of payload, and neither opted out via
//! [`CollectiveDescriptor::with_no_fuse`]. Under those conditions the fused
//! all-reduce — element count the sum of the bucket, payload the
//! concatenation of the members' byte ranges — computes exactly the
//! element-wise reduction each member would have computed: all-reduce is
//! element-wise, so concatenating inputs concatenates outputs, and every rank
//! slices its own segments back out at fixed offsets. No cross-element
//! reassociation is introduced; only the *schedule* of the elements changes,
//! which the per-collective bit-exactness argument already covers.

use crate::buffer::DeviceBuffer;
use crate::collective::{CollectiveDescriptor, CollectiveKind};

/// High bit reserved in the collective-id space for fused collectives the
/// fusion pass synthesizes. Applications must not register ids at or above
/// this base (the bit above it is reserved for graph replay ids); the
/// runtime's registration path enforces this.
pub const FUSED_COLL_ID_BASE: u64 = 1 << 62;

/// The deterministic id of the fused all-reduce replacing a bucket whose
/// first member is `first`: every rank records the same sequence, so every
/// rank derives the same id and the fused collectives resolve to one shared
/// communicator, exactly like an application-registered collective.
pub fn fused_coll_id(first: u64) -> u64 {
    FUSED_COLL_ID_BASE | first
}

/// One collective invocation recorded during graph capture.
#[derive(Debug, Clone)]
pub struct RecordedCollective {
    /// The registered collective id.
    pub coll_id: u64,
    /// Its registration-time descriptor.
    pub desc: CollectiveDescriptor,
    /// The send buffer recorded for replay (fixed address across replays).
    pub send: DeviceBuffer,
    /// The recv buffer recorded for replay.
    pub recv: DeviceBuffer,
}

/// One member of a fused all-reduce: which recorded collective it came from
/// and where its payload sits in the fused staging buffers.
#[derive(Debug, Clone)]
pub struct FusedSegment {
    /// The original collective id (for error attribution).
    pub coll_id: u64,
    /// The member's recorded send buffer (read by [`FusedAllReduce::gather`]).
    pub send: DeviceBuffer,
    /// The member's recorded recv buffer (written by
    /// [`FusedAllReduce::scatter`]).
    pub recv: DeviceBuffer,
    /// Byte offset of this member's payload in the staging buffers.
    pub byte_off: usize,
    /// Byte length of this member's payload.
    pub byte_len: usize,
}

/// A bucket of consecutive small same-shape all-reduces coalesced into one
/// striped all-reduce over concatenated byte ranges.
#[derive(Debug, Clone)]
pub struct FusedAllReduce {
    /// The synthesized collective id ([`fused_coll_id`] of the first member).
    pub coll_id: u64,
    /// The fused descriptor: the members' shared shape with the summed
    /// element count.
    pub desc: CollectiveDescriptor,
    /// The members, in recorded order, with their scatter offsets.
    pub segments: Vec<FusedSegment>,
    /// Concatenated send payload the fused collective reads.
    pub send_stage: DeviceBuffer,
    /// Concatenated recv payload the fused collective writes.
    pub recv_stage: DeviceBuffer,
}

impl FusedAllReduce {
    /// Copy every member's send payload into the staging buffer at its
    /// segment offset. Runs on the submitting thread at replay time, before
    /// the graph SQE is pushed, so the daemon only ever sees the staged
    /// concatenation.
    pub fn gather(&self) {
        // One stage-buffer lock for the whole pass and no per-segment
        // allocation: with thousands of fused members this copy loop is on
        // the replay hot path, and a `read_range` round-trip per segment
        // (temporary Vec + two extra lock acquisitions) dominates the cost
        // of replaying a large fused bucket.
        self.send_stage.with_write(|dst| {
            for seg in &self.segments {
                seg.send.with_read(|src| {
                    dst[seg.byte_off..seg.byte_off + seg.byte_len]
                        .copy_from_slice(&src[..seg.byte_len]);
                });
            }
        });
    }

    /// Copy every member's slice of the fused result back into that member's
    /// recorded recv buffer. Runs on the daemon after the fused collective
    /// completes, before the graph's single completion is published.
    pub fn scatter(&self) {
        // Mirror of `gather`: one stage lock, no temporaries. This runs on
        // the daemon thread right before the graph's completion is
        // published, so every nanosecond here delays the CQE.
        self.recv_stage.with_read(|src| {
            for seg in &self.segments {
                seg.recv.with_write(|dst| {
                    dst[..seg.byte_len]
                        .copy_from_slice(&src[seg.byte_off..seg.byte_off + seg.byte_len]);
                });
            }
        });
    }
}

/// One node of a captured iteration graph after the fusion pass.
#[derive(Debug, Clone)]
pub enum GraphOp {
    /// An unchanged recorded collective.
    Single(RecordedCollective),
    /// A coalesced bucket of small all-reduces.
    Fused(FusedAllReduce),
}

impl GraphOp {
    /// The collective id this node executes under.
    pub fn coll_id(&self) -> u64 {
        match self {
            GraphOp::Single(r) => r.coll_id,
            GraphOp::Fused(f) => f.coll_id,
        }
    }

    /// The descriptor this node executes with.
    pub fn desc(&self) -> &CollectiveDescriptor {
        match self {
            GraphOp::Single(r) => &r.desc,
            GraphOp::Fused(f) => &f.desc,
        }
    }

    /// The send buffer the daemon executes this node over.
    pub fn send_buffer(&self) -> &DeviceBuffer {
        match self {
            GraphOp::Single(r) => &r.send,
            GraphOp::Fused(f) => &f.send_stage,
        }
    }

    /// The recv buffer the daemon executes this node over.
    pub fn recv_buffer(&self) -> &DeviceBuffer {
        match self {
            GraphOp::Single(r) => &r.recv,
            GraphOp::Fused(f) => &f.recv_stage,
        }
    }
}

/// Whether `rec` is a candidate bucket member at all (shape compatibility
/// with its neighbours is checked separately).
fn fusable(rec: &RecordedCollective, threshold_bytes: usize) -> bool {
    rec.desc.kind == CollectiveKind::AllReduce
        && !rec.desc.no_fuse
        && rec.desc.count * rec.desc.dtype.size_bytes() <= threshold_bytes
}

/// Whether two candidates may share a bucket: everything that shapes the
/// fused plan — and the scheduling of the fused node — must agree.
fn compatible(a: &CollectiveDescriptor, b: &CollectiveDescriptor) -> bool {
    a.devices == b.devices
        && a.dtype == b.dtype
        && a.op == b.op
        && a.priority == b.priority
        && a.algorithm == b.algorithm
        && a.channels == b.channels
}

fn fuse(bucket: Vec<RecordedCollective>) -> FusedAllReduce {
    debug_assert!(bucket.len() >= 2);
    let elem = bucket[0].desc.dtype.size_bytes();
    let mut desc = bucket[0].desc.clone();
    desc.count = bucket.iter().map(|r| r.desc.count).sum();
    // A fused node never re-fuses (the pass runs once per capture, but the
    // flag also documents the synthesized descriptor's provenance).
    desc.no_fuse = true;
    let coll_id = fused_coll_id(bucket[0].coll_id);
    let mut segments = Vec::with_capacity(bucket.len());
    let mut off = 0usize;
    for r in bucket {
        let len = r.desc.count * elem;
        segments.push(FusedSegment {
            coll_id: r.coll_id,
            send: r.send,
            recv: r.recv,
            byte_off: off,
            byte_len: len,
        });
        off += len;
    }
    FusedAllReduce {
        coll_id,
        desc,
        segments,
        send_stage: DeviceBuffer::zeroed(off),
        recv_stage: DeviceBuffer::zeroed(off),
    }
}

fn flush(ops: &mut Vec<GraphOp>, bucket: &mut Vec<RecordedCollective>) {
    if bucket.len() >= 2 {
        flush_always(ops, bucket);
    } else {
        ops.extend(bucket.drain(..).map(GraphOp::Single));
    }
}

fn flush_always(ops: &mut Vec<GraphOp>, bucket: &mut Vec<RecordedCollective>) {
    ops.push(GraphOp::Fused(fuse(std::mem::take(bucket))));
}

/// The fusion pass: rewrite a recorded sequence into graph nodes, coalescing
/// every maximal run of ≥ 2 consecutive compatible small all-reduces (see the
/// module docs for the legality rule) into one [`FusedAllReduce`]. A
/// `threshold_bytes` of 0 disables fusion entirely. Deterministic, so SPMD
/// ranks agree on the bucketization and the synthesized ids.
pub fn plan_fusion(records: Vec<RecordedCollective>, threshold_bytes: usize) -> Vec<GraphOp> {
    let mut ops = Vec::with_capacity(records.len());
    let mut bucket: Vec<RecordedCollective> = Vec::new();
    for rec in records {
        if fusable(&rec, threshold_bytes) {
            if let Some(last) = bucket.last() {
                if !compatible(&last.desc, &rec.desc) {
                    flush(&mut ops, &mut bucket);
                }
            }
            bucket.push(rec);
        } else {
            flush(&mut ops, &mut bucket);
            ops.push(GraphOp::Single(rec));
        }
    }
    flush(&mut ops, &mut bucket);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::redop::ReduceOp;
    use gpu_sim::GpuId;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    fn small_ar(coll_id: u64, count: usize) -> RecordedCollective {
        let desc = CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, gpus(2));
        RecordedCollective {
            coll_id,
            desc,
            send: DeviceBuffer::zeroed(count * 4),
            recv: DeviceBuffer::zeroed(count * 4),
        }
    }

    #[test]
    fn consecutive_small_all_reduces_fuse_into_one_bucket() {
        let ops = plan_fusion(vec![small_ar(1, 4), small_ar(2, 6), small_ar(3, 2)], 1024);
        assert_eq!(ops.len(), 1);
        let GraphOp::Fused(f) = &ops[0] else {
            panic!("expected a fused node");
        };
        assert_eq!(f.coll_id, fused_coll_id(1));
        assert_eq!(f.desc.count, 12);
        assert!(f.desc.no_fuse);
        assert_eq!(f.segments.len(), 3);
        assert_eq!(
            f.segments
                .iter()
                .map(|s| (s.byte_off, s.byte_len))
                .collect::<Vec<_>>(),
            vec![(0, 16), (16, 24), (40, 8)]
        );
        assert_eq!(f.send_stage.len(), 48);
    }

    #[test]
    fn oversized_no_fuse_and_non_all_reduce_break_buckets() {
        let big = small_ar(10, 1024); // 4096 bytes > threshold
        let opted_out = {
            let mut r = small_ar(11, 4);
            r.desc.no_fuse = true;
            r
        };
        let gather = RecordedCollective {
            coll_id: 12,
            desc: CollectiveDescriptor::all_gather(4, DataType::F32, gpus(2)),
            send: DeviceBuffer::zeroed(16),
            recv: DeviceBuffer::zeroed(32),
        };
        let ops = plan_fusion(
            vec![
                small_ar(1, 4),
                big,
                small_ar(2, 4),
                opted_out,
                small_ar(3, 4),
                gather,
                small_ar(4, 4),
                small_ar(5, 4),
            ],
            64,
        );
        // Nothing fuses except the trailing adjacent pair.
        assert_eq!(ops.len(), 7);
        assert!(ops[..6].iter().all(|op| matches!(op, GraphOp::Single(_))));
        let GraphOp::Fused(f) = &ops[6] else {
            panic!("trailing pair fuses");
        };
        assert_eq!(f.coll_id, fused_coll_id(4));
        assert_eq!(f.segments.len(), 2);
    }

    #[test]
    fn incompatible_shapes_split_buckets() {
        let mut other_op = small_ar(2, 4);
        other_op.desc.op = Some(ReduceOp::Max);
        let mut other_devices = small_ar(4, 4);
        other_devices.desc.devices = gpus(3);
        let ops = plan_fusion(
            vec![
                small_ar(1, 4),
                other_op,
                small_ar(3, 4),
                other_devices,
                small_ar(5, 4),
            ],
            1024,
        );
        assert_eq!(ops.len(), 5, "no two neighbours agree on the shape");
        assert!(ops.iter().all(|op| matches!(op, GraphOp::Single(_))));
    }

    #[test]
    fn zero_threshold_disables_fusion() {
        let ops = plan_fusion(vec![small_ar(1, 1), small_ar(2, 1)], 0);
        assert_eq!(ops.len(), 2);
        assert!(ops.iter().all(|op| matches!(op, GraphOp::Single(_))));
    }

    #[test]
    fn gather_and_scatter_move_segment_payloads() {
        let a = small_ar(1, 2);
        let b = small_ar(2, 3);
        a.send.replace(vec![1; 8]);
        b.send.replace(vec![2; 12]);
        let ops = plan_fusion(vec![a.clone(), b.clone()], 1024);
        let GraphOp::Fused(f) = &ops[0] else {
            panic!("fused");
        };
        f.gather();
        assert_eq!(
            f.send_stage.to_vec(),
            [vec![1u8; 8], vec![2u8; 12]].concat()
        );
        f.recv_stage.replace((0u8..20).collect());
        f.scatter();
        assert_eq!(a.recv.to_vec(), (0u8..8).collect::<Vec<_>>());
        assert_eq!(b.recv.to_vec(), (8u8..20).collect::<Vec<_>>());
    }

    #[test]
    fn fused_ids_live_in_the_reserved_space_and_are_deterministic() {
        assert_eq!(fused_coll_id(7), FUSED_COLL_ID_BASE | 7);
        assert!(fused_coll_id(0) >= FUSED_COLL_ID_BASE);
    }
}
