//! Reduction operators and element-wise reduction over raw byte buffers.

use serde::{Deserialize, Serialize};

use crate::datatype::DataType;

/// The reduction operator of a reducing collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise product.
    Prod,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    /// All supported operators.
    pub const ALL: [ReduceOp; 4] = [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Max, ReduceOp::Min];
}

impl std::fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Prod => "prod",
            ReduceOp::Max => "max",
            ReduceOp::Min => "min",
        };
        write!(f, "{s}")
    }
}

macro_rules! reduce_typed {
    ($ty:ty, $acc:expr, $incoming:expr, $op:expr) => {{
        let width = std::mem::size_of::<$ty>();
        debug_assert_eq!($acc.len() % width, 0);
        debug_assert_eq!($acc.len(), $incoming.len());
        for (a, b) in $acc
            .chunks_exact_mut(width)
            .zip($incoming.chunks_exact(width))
        {
            let x = <$ty>::from_le_bytes(a.try_into().expect("chunk width"));
            let y = <$ty>::from_le_bytes(b.try_into().expect("chunk width"));
            let r: $ty = match $op {
                ReduceOp::Sum => x + y,
                ReduceOp::Prod => x * y,
                ReduceOp::Max => {
                    if x >= y {
                        x
                    } else {
                        y
                    }
                }
                ReduceOp::Min => {
                    if x <= y {
                        x
                    } else {
                        y
                    }
                }
            };
            a.copy_from_slice(&r.to_le_bytes());
        }
    }};
}

/// Reduce `incoming` into `acc` element-wise: `acc[i] = op(acc[i], incoming[i])`.
///
/// Both slices must have the same length and be a multiple of the element size.
pub fn reduce_into(acc: &mut [u8], incoming: &[u8], dtype: DataType, op: ReduceOp) {
    assert_eq!(
        acc.len(),
        incoming.len(),
        "reduce operands must have equal length"
    );
    assert_eq!(
        acc.len() % dtype.size_bytes(),
        0,
        "buffer length must be a multiple of the element size"
    );
    match dtype {
        DataType::F32 => reduce_typed!(f32, acc, incoming, op),
        DataType::F64 => reduce_typed!(f64, acc, incoming, op),
        DataType::I32 => reduce_typed!(i32, acc, incoming, op),
        DataType::I64 => reduce_typed!(i64, acc, incoming, op),
        DataType::U8 => reduce_typed!(u8, acc, incoming, op),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32_bytes(v: &[f32]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    fn bytes_f32(v: &[u8]) -> Vec<f32> {
        v.chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn sum_of_f32() {
        let mut acc = f32_bytes(&[1.0, 2.0, 3.0]);
        let inc = f32_bytes(&[0.5, 0.5, 0.5]);
        reduce_into(&mut acc, &inc, DataType::F32, ReduceOp::Sum);
        assert_eq!(bytes_f32(&acc), vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn prod_max_min_of_i32() {
        let to_bytes = |v: &[i32]| -> Vec<u8> { v.iter().flat_map(|x| x.to_le_bytes()).collect() };
        let from_bytes = |v: &[u8]| -> Vec<i32> {
            v.chunks_exact(4)
                .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                .collect()
        };
        let mut acc = to_bytes(&[2, -3, 7]);
        reduce_into(
            &mut acc,
            &to_bytes(&[4, 5, -1]),
            DataType::I32,
            ReduceOp::Prod,
        );
        assert_eq!(from_bytes(&acc), vec![8, -15, -7]);

        let mut acc = to_bytes(&[2, -3, 7]);
        reduce_into(
            &mut acc,
            &to_bytes(&[4, -5, -1]),
            DataType::I32,
            ReduceOp::Max,
        );
        assert_eq!(from_bytes(&acc), vec![4, -3, 7]);

        let mut acc = to_bytes(&[2, -3, 7]);
        reduce_into(
            &mut acc,
            &to_bytes(&[4, -5, -1]),
            DataType::I32,
            ReduceOp::Min,
        );
        assert_eq!(from_bytes(&acc), vec![2, -5, -1]);
    }

    #[test]
    fn u8_and_i64_and_f64_paths_work() {
        let mut acc = vec![1u8, 2, 3];
        reduce_into(&mut acc, &[10u8, 20, 30], DataType::U8, ReduceOp::Sum);
        assert_eq!(acc, vec![11, 22, 33]);

        let mut acc: Vec<u8> = 5i64.to_le_bytes().to_vec();
        reduce_into(&mut acc, &7i64.to_le_bytes(), DataType::I64, ReduceOp::Max);
        assert_eq!(i64::from_le_bytes(acc.try_into().unwrap()), 7);

        let mut acc: Vec<u8> = 2.5f64.to_le_bytes().to_vec();
        reduce_into(
            &mut acc,
            &4.0f64.to_le_bytes(),
            DataType::F64,
            ReduceOp::Prod,
        );
        assert_eq!(f64::from_le_bytes(acc.try_into().unwrap()), 10.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let mut acc = vec![0u8; 4];
        reduce_into(&mut acc, &[0u8; 8], DataType::F32, ReduceOp::Sum);
    }

    #[test]
    #[should_panic(expected = "multiple of the element size")]
    fn misaligned_length_panics() {
        let mut acc = vec![0u8; 3];
        reduce_into(&mut acc, &[0u8; 3], DataType::F32, ReduceOp::Sum);
    }
}
