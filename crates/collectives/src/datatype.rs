//! Element data types supported by the collectives.

use serde::{Deserialize, Serialize};

/// Element type of the data a collective operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 32-bit IEEE-754 float (the common gradient type).
    F32,
    /// 64-bit IEEE-754 float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 8-bit unsigned integer.
    U8,
}

impl DataType {
    /// Size of one element in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            DataType::F32 | DataType::I32 => 4,
            DataType::F64 | DataType::I64 => 8,
            DataType::U8 => 1,
        }
    }

    /// All supported data types (useful for sweeps and property tests).
    pub const ALL: [DataType; 5] = [
        DataType::F32,
        DataType::F64,
        DataType::I32,
        DataType::I64,
        DataType::U8,
    ];
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataType::F32 => "f32",
            DataType::F64 => "f64",
            DataType::I32 => "i32",
            DataType::I64 => "i64",
            DataType::U8 => "u8",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_sizes_are_correct() {
        assert_eq!(DataType::F32.size_bytes(), 4);
        assert_eq!(DataType::F64.size_bytes(), 8);
        assert_eq!(DataType::I32.size_bytes(), 4);
        assert_eq!(DataType::I64.size_bytes(), 8);
        assert_eq!(DataType::U8.size_bytes(), 1);
    }

    #[test]
    fn display_names_are_lowercase() {
        for dt in DataType::ALL {
            let name = dt.to_string();
            assert_eq!(name, name.to_lowercase());
        }
    }
}
