//! Chunking: dividing collective data into regular chunks and per-rank slices.
//!
//! Input data for a collective is divided into regular chunks to bound the
//! size of each connector transfer (and, in DFCCL, to create frequent
//! preemption points). The ring algorithm additionally partitions data into
//! one *slice* per rank.

use serde::{Deserialize, Serialize};

/// A contiguous range of elements inside a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ElemRange {
    /// First element index.
    pub offset: usize,
    /// Number of elements.
    pub len: usize,
}

impl ElemRange {
    /// Construct a range.
    pub fn new(offset: usize, len: usize) -> Self {
        ElemRange { offset, len }
    }

    /// One past the last element index.
    pub fn end(&self) -> usize {
        self.offset + self.len
    }

    /// Byte offset given an element size.
    pub fn byte_offset(&self, elem_size: usize) -> usize {
        self.offset * elem_size
    }

    /// Byte length given an element size.
    pub fn byte_len(&self, elem_size: usize) -> usize {
        self.len * elem_size
    }

    /// Shift the range by `delta` elements.
    pub fn shifted(&self, delta: usize) -> ElemRange {
        ElemRange::new(self.offset + delta, self.len)
    }
}

/// Split `total` elements into chunks of at most `max_chunk` elements.
/// Every chunk except possibly the last has exactly `max_chunk` elements.
/// Returns an empty vector for `total == 0`.
pub fn chunk_ranges(total: usize, max_chunk: usize) -> Vec<ElemRange> {
    assert!(max_chunk > 0, "chunk size must be positive");
    let mut out = Vec::with_capacity(total.div_ceil(max_chunk));
    let mut offset = 0;
    while offset < total {
        let len = max_chunk.min(total - offset);
        out.push(ElemRange::new(offset, len));
        offset += len;
    }
    out
}

/// Split `total` elements into `parts` contiguous, near-equal slices.
/// The first `total % parts` slices get one extra element, so slices cover the
/// whole range with sizes differing by at most one. Slices may be empty when
/// `total < parts`.
pub fn slice_ranges(total: usize, parts: usize) -> Vec<ElemRange> {
    assert!(parts > 0, "number of slices must be positive");
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut offset = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(ElemRange::new(offset, len));
        offset += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn chunks_cover_the_range_exactly() {
        let chunks = chunk_ranges(10, 4);
        assert_eq!(
            chunks,
            vec![
                ElemRange::new(0, 4),
                ElemRange::new(4, 4),
                ElemRange::new(8, 2)
            ]
        );
    }

    #[test]
    fn zero_total_gives_no_chunks() {
        assert!(chunk_ranges(0, 4).is_empty());
    }

    #[test]
    fn single_chunk_when_total_fits() {
        assert_eq!(chunk_ranges(3, 8), vec![ElemRange::new(0, 3)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_size_panics() {
        let _ = chunk_ranges(8, 0);
    }

    #[test]
    fn slices_are_near_equal() {
        let slices = slice_ranges(10, 3);
        assert_eq!(
            slices,
            vec![
                ElemRange::new(0, 4),
                ElemRange::new(4, 3),
                ElemRange::new(7, 3)
            ]
        );
    }

    #[test]
    fn slices_can_be_empty_when_total_is_small() {
        let slices = slice_ranges(2, 4);
        assert_eq!(slices.iter().filter(|s| s.len == 0).count(), 2);
        assert_eq!(slices.iter().map(|s| s.len).sum::<usize>(), 2);
    }

    #[test]
    fn range_helpers() {
        let r = ElemRange::new(3, 5);
        assert_eq!(r.end(), 8);
        assert_eq!(r.byte_offset(4), 12);
        assert_eq!(r.byte_len(4), 20);
        assert_eq!(r.shifted(2), ElemRange::new(5, 5));
    }

    proptest! {
        #[test]
        fn chunks_partition_any_range(total in 0usize..10_000, max_chunk in 1usize..512) {
            let chunks = chunk_ranges(total, max_chunk);
            // Contiguous, in order, covering exactly [0, total).
            let mut expected_offset = 0;
            for c in &chunks {
                prop_assert_eq!(c.offset, expected_offset);
                prop_assert!(c.len >= 1);
                prop_assert!(c.len <= max_chunk);
                expected_offset = c.end();
            }
            prop_assert_eq!(expected_offset, total);
        }

        #[test]
        fn slices_partition_any_range(total in 0usize..10_000, parts in 1usize..64) {
            let slices = slice_ranges(total, parts);
            prop_assert_eq!(slices.len(), parts);
            let mut expected_offset = 0;
            let mut min_len = usize::MAX;
            let mut max_len = 0usize;
            for s in &slices {
                prop_assert_eq!(s.offset, expected_offset);
                expected_offset = s.end();
                min_len = min_len.min(s.len);
                max_len = max_len.max(s.len);
            }
            prop_assert_eq!(expected_offset, total);
            prop_assert!(max_len - min_len <= 1);
        }
    }
}
