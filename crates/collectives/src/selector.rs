//! Topology- and payload-aware algorithm selection.
//!
//! Mirrors the NCCL design point the GPU-centric-communication survey
//! describes: ring for bandwidth-bound (large) payloads, tree for
//! latency-bound (small) payloads, hierarchical across node boundaries.
//! The choice can be forced per collective (via
//! [`CollectiveDescriptor::algorithm`]) or globally (via
//! [`AlgorithmSelector::force`]); a per-collective override always wins and
//! is validated strictly — asking for an algorithm that cannot schedule the
//! descriptor is a registration error, not a silent fallback.

use crate::collective::CollectiveDescriptor;
use crate::plan::{algorithm, AlgorithmKind, Plan};
use crate::CollectiveError;
use dfccl_transport::{LinkHealth, Topology};

/// Default payload threshold at or below which latency dominates and the
/// tree schedule is preferred (bytes). Matches the modelled crossover of the
/// Table 2 link parameters (see `perf_algorithms`' sweep): the tree's
/// O(log n) hop count wins up to ~16 KiB, the ring's lower byte volume wins
/// beyond it.
pub const DEFAULT_TREE_THRESHOLD_BYTES: usize = 16 * 1024;

/// Picks a collective algorithm from the payload size and the communicator's
/// topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgorithmSelector {
    /// Payloads at or below this many bytes use the tree schedule (when the
    /// collective kind supports it).
    pub tree_threshold_bytes: usize,
    /// Global override: always use this algorithm when it supports the
    /// descriptor (a per-collective override still wins).
    pub force: Option<AlgorithmKind>,
    /// Parallel channels every `(src, dst)` edge is striped across
    /// (`1` = unstriped). A per-collective override on the descriptor
    /// ([`CollectiveDescriptor::with_channels`]) wins.
    pub channels: usize,
}

impl Default for AlgorithmSelector {
    fn default() -> Self {
        AlgorithmSelector {
            tree_threshold_bytes: DEFAULT_TREE_THRESHOLD_BYTES,
            force: None,
            channels: 1,
        }
    }
}

impl AlgorithmSelector {
    /// A selector that always picks `kind` when possible.
    pub fn forced(kind: AlgorithmKind) -> Self {
        AlgorithmSelector {
            force: Some(kind),
            ..Default::default()
        }
    }

    /// Choose the algorithm for `desc` over `topology`.
    ///
    /// Precedence: per-collective override (strict — returned even if
    /// unsupported, so the caller surfaces a clear error), then the global
    /// override (skipped when unsupported), then the topology/payload policy,
    /// then ring.
    pub fn select(&self, desc: &CollectiveDescriptor, topology: &Topology) -> AlgorithmKind {
        if let Some(kind) = desc.algorithm {
            return kind;
        }
        if let Some(kind) = self.force {
            if algorithm(kind).supports(desc, topology) {
                return kind;
            }
        }
        // Dense-mesh kinds (all-to-all, send/recv) have exactly one schedule
        // family; no payload/topology policy applies.
        if algorithm(AlgorithmKind::Pairwise).supports(desc, topology) {
            return AlgorithmKind::Pairwise;
        }
        let payload = desc.count * desc.dtype.size_bytes();
        let tree = algorithm(AlgorithmKind::DoubleBinaryTree);
        if payload <= self.tree_threshold_bytes && tree.supports(desc, topology) {
            return AlgorithmKind::DoubleBinaryTree;
        }
        let hierarchical = algorithm(AlgorithmKind::Hierarchical);
        if hierarchical.supports(desc, topology) {
            return AlgorithmKind::Hierarchical;
        }
        AlgorithmKind::Ring
    }

    /// [`AlgorithmSelector::select`] constrained by the domain's link-health
    /// map: when a quarantined edge lies inside `desc`'s device set, the
    /// preferred family may have to change. Returns the chosen kind plus a
    /// `degraded` flag (true when the plan had to avoid a dead edge).
    ///
    /// Policy: a healthy device set selects exactly as before (and is the
    /// zero-cost fast path). A degraded ring falls back to the double binary
    /// tree when the kind supports it — the tree's edge set differs from the
    /// ring's, giving re-planning a chance to route around the failure
    /// outright. Any other degraded family keeps its schedule and relies on
    /// the mesh rerouting quarantined lanes onto spares
    /// ([`dfccl_transport::LinkHealth::reroute`]). A strict per-collective
    /// override is never second-guessed.
    pub fn select_with_health(
        &self,
        desc: &CollectiveDescriptor,
        topology: &Topology,
        health: &LinkHealth,
    ) -> (AlgorithmKind, bool) {
        let kind = self.select(desc, topology);
        if !topology.degraded_for(&desc.devices, health) {
            return (kind, false);
        }
        if kind == AlgorithmKind::Ring && desc.algorithm.is_none() {
            let tree = algorithm(AlgorithmKind::DoubleBinaryTree);
            if tree.supports(desc, topology) {
                return (AlgorithmKind::DoubleBinaryTree, true);
            }
        }
        (kind, true)
    }

    /// The channel count in effect for `desc`: the per-collective override
    /// when present, this selector's global setting otherwise. A zero count
    /// is passed through so the plan builders reject it
    /// (`CollectiveError::InvalidChannelCount`) — the same hard error the
    /// descriptor-level override gets from validation.
    pub fn channels_for(&self, desc: &CollectiveDescriptor) -> usize {
        desc.channels.unwrap_or(self.channels)
    }

    /// Select an algorithm and compile `rank`'s plan with it, striped across
    /// the channel count in effect ([`AlgorithmSelector::channels_for`]).
    pub fn build_plan(
        &self,
        desc: &CollectiveDescriptor,
        rank: usize,
        max_chunk_elems: usize,
        topology: &Topology,
    ) -> Result<Plan, CollectiveError> {
        let kind = self.select(desc, topology);
        algorithm(kind).build_plan_striped(
            desc,
            rank,
            max_chunk_elems,
            self.channels_for(desc),
            topology,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::redop::ReduceOp;
    use gpu_sim::GpuId;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    fn all_reduce(count: usize, n: usize) -> CollectiveDescriptor {
        CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, gpus(n))
    }

    #[test]
    fn small_payloads_pick_tree_large_pick_ring() {
        let sel = AlgorithmSelector::default();
        let topo = Topology::flat(8);
        // 1 KiB all-reduce: latency-bound -> tree.
        assert_eq!(
            sel.select(&all_reduce(256, 8), &topo),
            AlgorithmKind::DoubleBinaryTree
        );
        // 4 MiB all-reduce: bandwidth-bound -> ring.
        assert_eq!(
            sel.select(&all_reduce(1 << 20, 8), &topo),
            AlgorithmKind::Ring
        );
    }

    #[test]
    fn multi_node_large_payloads_pick_hierarchical() {
        let sel = AlgorithmSelector::default();
        let topo = Topology::two_eight_gpu_servers();
        let desc = all_reduce(1 << 20, 16);
        assert_eq!(sel.select(&desc, &topo), AlgorithmKind::Hierarchical);
        // Small payloads still prefer the tree even across nodes.
        assert_eq!(
            sel.select(&all_reduce(256, 16), &topo),
            AlgorithmKind::DoubleBinaryTree
        );
    }

    #[test]
    fn dense_mesh_kinds_always_select_pairwise() {
        let sel = AlgorithmSelector::default();
        let topo = Topology::flat(4);
        // Tiny or huge, flat or multi-node: all-to-all has one family.
        for count in [4usize, 1 << 20] {
            let a2a = CollectiveDescriptor::all_to_all(count, DataType::F32, gpus(4));
            assert_eq!(sel.select(&a2a, &topo), AlgorithmKind::Pairwise);
        }
        let p2p = CollectiveDescriptor::send_recv(64, DataType::F32, GpuId(0), GpuId(1));
        assert_eq!(sel.select(&p2p, &topo), AlgorithmKind::Pairwise);
        // A global ring override cannot apply (ring does not schedule them).
        let forced = AlgorithmSelector::forced(AlgorithmKind::Ring);
        let a2a = CollectiveDescriptor::all_to_all(64, DataType::F32, gpus(4));
        assert_eq!(forced.select(&a2a, &topo), AlgorithmKind::Pairwise);
        // A strict per-collective ring override is a build-time error.
        let bad = CollectiveDescriptor::all_to_all(64, DataType::F32, gpus(4))
            .with_algorithm(AlgorithmKind::Ring);
        assert!(matches!(
            sel.build_plan(&bad, 0, 16, &topo),
            Err(CollectiveError::UnsupportedAlgorithm { .. })
        ));
    }

    #[test]
    fn unsupported_kinds_fall_back_to_ring() {
        let sel = AlgorithmSelector::default();
        let topo = Topology::flat(4);
        // A small all-gather: tree does not schedule it; ring does.
        let ag = CollectiveDescriptor::all_gather(16, DataType::F32, gpus(4));
        assert_eq!(sel.select(&ag, &topo), AlgorithmKind::Ring);
    }

    #[test]
    fn per_collective_override_wins_and_is_strict() {
        let sel = AlgorithmSelector::default();
        let topo = Topology::flat(4);
        let desc = all_reduce(1 << 20, 4).with_algorithm(AlgorithmKind::DoubleBinaryTree);
        assert_eq!(sel.select(&desc, &topo), AlgorithmKind::DoubleBinaryTree);
        // Forcing hierarchical on a single-node topology is an error at
        // build time, not a silent ring fallback.
        let bad = all_reduce(16, 4).with_algorithm(AlgorithmKind::Hierarchical);
        assert!(matches!(
            sel.build_plan(&bad, 0, 16, &topo),
            Err(CollectiveError::UnsupportedTopology(_))
        ));
    }

    #[test]
    fn global_override_applies_when_supported() {
        let topo = Topology::flat(4);
        let sel = AlgorithmSelector::forced(AlgorithmKind::DoubleBinaryTree);
        assert_eq!(
            sel.select(&all_reduce(1 << 20, 4), &topo),
            AlgorithmKind::DoubleBinaryTree
        );
        // Unsupported global override falls through to the policy.
        let ag = CollectiveDescriptor::all_gather(16, DataType::F32, gpus(4));
        assert_eq!(sel.select(&ag, &topo), AlgorithmKind::Ring);
    }

    #[test]
    fn health_fallback_swaps_ring_for_tree_only_when_degraded() {
        use dfccl_transport::{ChannelId, EdgeId, LinkHealth};

        let sel = AlgorithmSelector::default();
        let topo = Topology::flat(8);
        let health = LinkHealth::new();
        let desc = all_reduce(1 << 20, 8); // bandwidth-bound -> ring
        assert_eq!(
            sel.select_with_health(&desc, &topo, &health),
            (AlgorithmKind::Ring, false)
        );
        // Quarantine a ring edge: selection degrades to the tree family.
        health.quarantine(EdgeId {
            src: GpuId(2),
            dst: GpuId(3),
            channel: ChannelId(0),
        });
        assert_eq!(
            sel.select_with_health(&desc, &topo, &health),
            (AlgorithmKind::DoubleBinaryTree, true)
        );
        // A device set avoiding the dead edge is unaffected.
        let small = all_reduce(1 << 20, 2);
        assert_eq!(
            sel.select_with_health(&small, &topo, &health),
            (AlgorithmKind::Ring, false)
        );
        // A strict per-collective override stays put but is flagged degraded
        // (the mesh reroute covers it).
        let forced = all_reduce(1 << 20, 8).with_algorithm(AlgorithmKind::Ring);
        assert_eq!(
            sel.select_with_health(&forced, &topo, &health),
            (AlgorithmKind::Ring, true)
        );
        // A family without a fallback keeps its schedule, flagged degraded.
        let a2a = CollectiveDescriptor::all_to_all(64, DataType::F32, gpus(8));
        assert_eq!(
            sel.select_with_health(&a2a, &topo, &health),
            (AlgorithmKind::Pairwise, true)
        );
    }

    #[test]
    fn channel_count_resolution_prefers_the_descriptor() {
        let sel = AlgorithmSelector {
            channels: 2,
            ..Default::default()
        };
        let topo = Topology::flat(4);
        assert_eq!(sel.channels_for(&all_reduce(1 << 20, 4)), 2);
        let overridden = all_reduce(1 << 20, 4).with_channels(4);
        assert_eq!(sel.channels_for(&overridden), 4);
        // The compiled plan actually stripes across the resolved count.
        let plan = sel.build_plan(&overridden, 0, 1024, &topo).unwrap();
        assert_eq!(plan.channel_count(), 4);
        let global = sel
            .build_plan(&all_reduce(1 << 20, 4), 0, 1024, &topo)
            .unwrap();
        assert_eq!(global.channel_count(), 2);
        // The default selector stays unstriped.
        let default = AlgorithmSelector::default()
            .build_plan(&all_reduce(1 << 20, 4), 0, 1024, &topo)
            .unwrap();
        assert_eq!(default.channel_count(), 1);
        // A zero global channel count is a hard error at build time, exactly
        // like the descriptor-level override is at validation time.
        let zero = AlgorithmSelector {
            channels: 0,
            ..Default::default()
        };
        assert!(matches!(
            zero.build_plan(&all_reduce(16, 4), 0, 1024, &topo),
            Err(CollectiveError::InvalidChannelCount(0))
        ));
    }

    #[test]
    fn selected_plans_build() {
        let sel = AlgorithmSelector::default();
        let topo = Topology::two_eight_gpu_servers();
        for count in [64, 1 << 18] {
            let desc = all_reduce(count, 16);
            let plan = sel.build_plan(&desc, 3, 1024, &topo).unwrap();
            plan.validate(3, 16).unwrap();
            assert!(!plan.is_empty());
        }
    }
}
