//! The plan IR: a rank's primitive sequence plus the algorithm that shaped it.
//!
//! DFCCL's deadlock-prevention machinery (chunk-granular preemptible
//! primitives, SQ/CQ control path, voluntary quitting) is algorithm-agnostic:
//! any schedule expressed as a sequence of single-chunk, non-blocking
//! primitives over peer-addressed connectors is preemptible at every chunk
//! boundary. This module captures that contract:
//!
//! * [`Plan`] — the per-rank intermediate representation a collective
//!   algorithm compiles to. It carries explicit peer ranks, so the transport
//!   layer can materialise exactly the connectors the plan uses.
//! * [`Algorithm`] — the trait every schedule generator implements (ring,
//!   double binary tree, hierarchical).
//! * [`AlgorithmKind`] — the selectable algorithm families.
//!
//! ## Ordering invariant
//!
//! Within a plan, the steps touching one directed `(peer, channel)` edge must
//! appear in chunk-major order (chunk `c` flows through the pipeline before
//! chunk `c+1`), and matched send/recv pairs must be emitted in the same
//! relative order on both endpoints — connectors are FIFO. The builders
//! guarantee this by sorting on `(chunk_index, step)` within each phase; the
//! step counter is monotone in the algorithm's logical order. Striping
//! assigns channels round-robin by chunk index, so each channel's
//! subsequence of the sorted plan is itself chunk-major and the invariant
//! holds per channel.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::collective::CollectiveDescriptor;
use crate::primitive::PrimitiveStep;
use crate::CollectiveError;
use dfccl_transport::{ChannelId, Topology};

/// The collective algorithm families a plan can be built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// The classic ring schedule: bandwidth-optimal, O(n) latency.
    Ring,
    /// Double binary tree: latency-optimal (O(log n) hops) for small payloads.
    DoubleBinaryTree,
    /// Two-level schedule for multi-node topologies: intra-node
    /// reduce-scatter, inter-node exchange among the per-slice node leaders,
    /// intra-node all-gather.
    Hierarchical,
    /// Linear-shift pairwise exchange over the dense connector mesh: at shift
    /// `s`, rank `r` sends to `r+s` and receives from `r-s`. Schedules
    /// all-to-all and plain point-to-point send/recv.
    Pairwise,
}

impl AlgorithmKind {
    /// All selectable algorithm kinds.
    pub const ALL: [AlgorithmKind; 4] = [
        AlgorithmKind::Ring,
        AlgorithmKind::DoubleBinaryTree,
        AlgorithmKind::Hierarchical,
        AlgorithmKind::Pairwise,
    ];
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AlgorithmKind::Ring => "ring",
            AlgorithmKind::DoubleBinaryTree => "tree",
            AlgorithmKind::Hierarchical => "hierarchical",
            AlgorithmKind::Pairwise => "pairwise",
        };
        write!(f, "{s}")
    }
}

/// Connectivity derived from a plan's steps, computed once at construction:
/// the peer sets, the directed `(peer, channel)` edge sets (ascending — the
/// canonical connector-table order compiled programs index into) and the
/// channel count. Derived data only; always consistent with `steps` because
/// [`Plan::new`] is the single construction point.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct PlanEdges {
    send_peers: Vec<usize>,
    recv_peers: Vec<usize>,
    send_edges: Vec<(usize, ChannelId)>,
    recv_edges: Vec<(usize, ChannelId)>,
    channel_count: usize,
}

impl PlanEdges {
    fn of(steps: &[PrimitiveStep]) -> Self {
        let mut send_edges: BTreeSet<(usize, ChannelId)> = BTreeSet::new();
        let mut recv_edges: BTreeSet<(usize, ChannelId)> = BTreeSet::new();
        let mut channel_count = 1usize;
        for s in steps {
            if let Some(p) = s.send_to {
                send_edges.insert((p, s.channel));
            }
            if let Some(p) = s.recv_from {
                recv_edges.insert((p, s.channel));
            }
            channel_count = channel_count.max(s.channel.0 as usize + 1);
        }
        // Edge sets iterate in ascending (peer, channel) order, so equal
        // peers are adjacent and a dedup yields the ascending peer list.
        let dedup_peers = |edges: &BTreeSet<(usize, ChannelId)>| {
            let mut peers: Vec<usize> = edges.iter().map(|&(p, _)| p).collect();
            peers.dedup();
            peers
        };
        let send_peers = dedup_peers(&send_edges);
        let recv_peers = dedup_peers(&recv_edges);
        PlanEdges {
            send_peers,
            recv_peers,
            send_edges: send_edges.into_iter().collect(),
            recv_edges: recv_edges.into_iter().collect(),
            channel_count,
        }
    }
}

/// A rank's compiled schedule: the primitive sequence plus provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Plan {
    /// The algorithm family that produced this plan.
    pub algorithm: AlgorithmKind,
    /// The rank's primitives, in execution order.
    pub steps: Vec<PrimitiveStep>,
    /// Peer/edge sets derived from `steps` at construction, so the hot
    /// registration path never recomputes them (each used to allocate a
    /// fresh `BTreeSet` per call).
    edges: PlanEdges,
}

impl Plan {
    /// A plan over `steps` attributed to `algorithm`.
    pub fn new(algorithm: AlgorithmKind, steps: Vec<PrimitiveStep>) -> Self {
        let edges = PlanEdges::of(&steps);
        Plan {
            algorithm,
            steps,
            edges,
        }
    }

    /// Number of primitives.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the plan has no primitives.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The distinct ranks this plan sends to, ascending.
    pub fn send_peers(&self) -> &[usize] {
        &self.edges.send_peers
    }

    /// The distinct ranks this plan receives from, ascending.
    pub fn recv_peers(&self) -> &[usize] {
        &self.edges.recv_peers
    }

    /// The distinct directed `(peer, channel)` edges this plan sends over,
    /// ascending — exactly the connectors the transport must materialise,
    /// and the canonical send-connector-table order compiled programs use.
    pub fn send_edges(&self) -> &[(usize, ChannelId)] {
        &self.edges.send_edges
    }

    /// The distinct directed `(peer, channel)` edges this plan receives over,
    /// ascending.
    pub fn recv_edges(&self) -> &[(usize, ChannelId)] {
        &self.edges.recv_edges
    }

    /// Number of distinct channels this plan stripes across (at least 1).
    pub fn channel_count(&self) -> usize {
        self.edges.channel_count
    }

    /// Check structural consistency: every step's peer fields match its kind
    /// and stay inside a communicator of `size` ranks, and no step addresses
    /// `rank` itself.
    pub fn validate(&self, rank: usize, size: usize) -> Result<(), CollectiveError> {
        for step in &self.steps {
            if !step.peers_consistent(size)
                || step.send_to == Some(rank)
                || step.recv_from == Some(rank)
            {
                return Err(CollectiveError::MalformedPlan {
                    algorithm: self.algorithm,
                    rank,
                });
            }
        }
        Ok(())
    }
}

/// A collective schedule generator. Implementations compile a descriptor into
/// a per-rank [`Plan`] whose primitives stay single-chunk, non-blocking and
/// preemptible at every boundary — the properties the daemon kernel's
/// two-phase blocking relies on, independent of the schedule's shape.
pub trait Algorithm {
    /// Which family this generator belongs to.
    fn kind(&self) -> AlgorithmKind;

    /// Whether this algorithm can schedule `desc` over `topology`.
    fn supports(&self, desc: &CollectiveDescriptor, topology: &Topology) -> bool;

    /// Build the primitive sequence executed by `rank`, chunking transfers at
    /// `max_chunk_elems` elements and striping the chunk stream of every
    /// `(src, dst)` edge round-robin across `channels` parallel connectors.
    /// `channels = 1` is the unstriped schedule.
    fn build_plan_striped(
        &self,
        desc: &CollectiveDescriptor,
        rank: usize,
        max_chunk_elems: usize,
        channels: usize,
        topology: &Topology,
    ) -> Result<Plan, CollectiveError>;

    /// Build the unstriped (single-channel) primitive sequence executed by
    /// `rank`, chunking transfers at `max_chunk_elems` elements.
    fn build_plan(
        &self,
        desc: &CollectiveDescriptor,
        rank: usize,
        max_chunk_elems: usize,
        topology: &Topology,
    ) -> Result<Plan, CollectiveError> {
        self.build_plan_striped(desc, rank, max_chunk_elems, 1, topology)
    }
}

/// The generator for an algorithm kind.
pub fn algorithm(kind: AlgorithmKind) -> &'static dyn Algorithm {
    match kind {
        AlgorithmKind::Ring => &crate::ring::RingAlgorithm,
        AlgorithmKind::DoubleBinaryTree => &crate::tree::DoubleBinaryTreeAlgorithm,
        AlgorithmKind::Hierarchical => &crate::hierarchical::HierarchicalAlgorithm,
        AlgorithmKind::Pairwise => &crate::alltoall::PairwiseAlgorithm,
    }
}

/// Validate shared plan-builder inputs (descriptor, rank bound, chunk size,
/// channel count).
pub(crate) fn check_builder_inputs(
    desc: &CollectiveDescriptor,
    rank: usize,
    max_chunk_elems: usize,
    channels: usize,
) -> Result<(), CollectiveError> {
    desc.validate()?;
    let n = desc.num_ranks();
    if rank >= n {
        return Err(CollectiveError::InvalidRank { rank, size: n });
    }
    if max_chunk_elems == 0 {
        return Err(CollectiveError::InvalidChunkSize(max_chunk_elems));
    }
    if channels == 0 || channels > u32::MAX as usize {
        return Err(CollectiveError::InvalidChannelCount(channels));
    }
    Ok(())
}

/// Shared emission helper: split a macro step into chunk-sized primitives,
/// striping consecutive chunks round-robin over `channels` connectors
/// (`channel = chunk_index % channels`). `src` and `dst`, when both present,
/// are ranges of equal length chunked in lockstep.
#[allow(clippy::too_many_arguments)]
pub(crate) fn push_chunked(
    out: &mut Vec<PrimitiveStep>,
    kind: crate::primitive::PrimitiveKind,
    src_base: Option<crate::chunk::ElemRange>,
    src_buf: crate::primitive::SrcBuf,
    dst_base: Option<crate::chunk::ElemRange>,
    send_to: Option<usize>,
    recv_from: Option<usize>,
    step: u32,
    max_chunk: usize,
    channels: usize,
) {
    use crate::chunk::{chunk_ranges, ElemRange};
    let total = src_base
        .map(|r| r.len)
        .or(dst_base.map(|r| r.len))
        .unwrap_or(0);
    let channels = channels.max(1) as u32;
    for (ci, chunk) in chunk_ranges(total, max_chunk).into_iter().enumerate() {
        let src = src_base.map(|r| ElemRange::new(r.offset + chunk.offset, chunk.len));
        let dst = dst_base.map(|r| ElemRange::new(r.offset + chunk.offset, chunk.len));
        out.push(PrimitiveStep {
            kind,
            src,
            src_buf,
            dst,
            send_to,
            recv_from,
            chunk_index: ci as u32,
            step,
            channel: ChannelId(ci as u32 % channels),
        });
    }
}

/// Sort a phase's steps chunk-major: chunk `c` flows through every macro step
/// of the phase before chunk `c+1` starts, keeping the in-flight window per
/// connector O(1) regardless of the collective size (the NCCL loop
/// structure). Matched send/recv pairs shift uniformly (`step → step+1`), so
/// both endpoints' sorted orders stay aligned and connector FIFO order is
/// preserved. Channels are a function of the chunk index, so every channel's
/// subsequence of the sorted order is itself chunk-major — the invariant (and
/// the deadlock-freedom argument it carries) holds channel-wise.
pub(crate) fn sort_chunk_major(steps: &mut [PrimitiveStep]) {
    steps.sort_by_key(|p| (p.chunk_index, p.step));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ElemRange;
    use crate::primitive::{PrimitiveKind, SrcBuf};

    fn step(send_to: Option<usize>, recv_from: Option<usize>) -> PrimitiveStep {
        let kind = match (send_to.is_some(), recv_from.is_some()) {
            (true, true) => PrimitiveKind::RecvCopySend,
            (true, false) => PrimitiveKind::Send,
            (false, true) => PrimitiveKind::Recv,
            (false, false) => PrimitiveKind::Copy,
        };
        PrimitiveStep {
            kind,
            src: Some(ElemRange::new(0, 4)),
            src_buf: SrcBuf::Send,
            dst: Some(ElemRange::new(0, 4)),
            send_to,
            recv_from,
            chunk_index: 0,
            step: 0,
            channel: ChannelId(0),
        }
    }

    #[test]
    fn edges_carry_channels_and_dedupe() {
        let mut a = step(Some(1), None);
        a.channel = ChannelId(1);
        let plan = Plan::new(
            AlgorithmKind::Ring,
            vec![step(Some(1), Some(2)), a, step(Some(1), Some(2))],
        );
        assert_eq!(
            plan.send_edges(),
            vec![(1, ChannelId(0)), (1, ChannelId(1))]
        );
        assert_eq!(plan.recv_edges(), vec![(2, ChannelId(0))]);
        assert_eq!(plan.channel_count(), 2);
        assert_eq!(Plan::new(AlgorithmKind::Ring, vec![]).channel_count(), 1);
    }

    #[test]
    fn peers_are_collected_sorted_and_deduped() {
        let plan = Plan::new(
            AlgorithmKind::Ring,
            vec![
                step(Some(3), Some(1)),
                step(Some(1), None),
                step(Some(3), Some(2)),
            ],
        );
        assert_eq!(plan.send_peers(), vec![1, 3]);
        assert_eq!(plan.recv_peers(), vec![1, 2]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn validate_rejects_self_loops_and_out_of_range_peers() {
        let plan = Plan::new(AlgorithmKind::Ring, vec![step(Some(0), None)]);
        assert!(matches!(
            plan.validate(0, 4),
            Err(CollectiveError::MalformedPlan { .. })
        ));
        let plan = Plan::new(AlgorithmKind::Ring, vec![step(Some(9), None)]);
        assert!(plan.validate(0, 4).is_err());
        let plan = Plan::new(AlgorithmKind::Ring, vec![step(Some(1), Some(2))]);
        assert!(plan.validate(0, 4).is_ok());
    }

    #[test]
    fn algorithm_kinds_display_and_enumerate() {
        assert_eq!(AlgorithmKind::Ring.to_string(), "ring");
        assert_eq!(AlgorithmKind::DoubleBinaryTree.to_string(), "tree");
        assert_eq!(AlgorithmKind::Hierarchical.to_string(), "hierarchical");
        assert_eq!(AlgorithmKind::Pairwise.to_string(), "pairwise");
        assert_eq!(AlgorithmKind::ALL.len(), 4);
        for kind in AlgorithmKind::ALL {
            assert_eq!(algorithm(kind).kind(), kind);
        }
    }
}
