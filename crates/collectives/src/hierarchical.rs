//! Hierarchical (two-level) all-reduce for multi-node topologies.
//!
//! Flat rings over a multi-node cluster push `2(n-1)/n` of the buffer across
//! the slow inter-node fabric on *every* hop-pair. The hierarchical schedule
//! confines most traffic to the fast intra-node links (the standard NCCL
//! multi-node design point):
//!
//! 1. **Intra-node reduce-scatter** — a ring over the node's local ranks;
//!    afterwards local rank `j` holds the node-wide partial sum of slice `j`
//!    in its recv buffer.
//! 2. **Inter-node exchange** — for each slice, the ranks holding it (one
//!    per node — the slice's *node leaders*) run a ring all-reduce of that
//!    slice across the fabric. Only `1/k`-th of the buffer crosses the
//!    inter-node boundary per leader.
//! 3. **Intra-node all-gather** — the ring again, redistributing the now
//!    globally-reduced slices to every local rank.
//!
//! The phases use [`SrcBuf::Recv`] operands where a step consumes a partial
//! accumulated by an earlier phase. Each phase is sorted chunk-major
//! independently and the phases are concatenated in order on every rank:
//! within a phase the ring argument gives deadlock freedom, and across
//! phases a blocked rank only ever waits on a peer in the same or an earlier
//! phase, so the schedule completes even with 1-slot connectors.
//!
//! The algorithm requires every node group (as classified by
//! [`Topology::machine_of`]) to contribute the same number of ranks, and at
//! least two nodes. Single-rank groups degenerate gracefully: phases 1 and 3
//! vanish and phase 2 becomes a flat inter-node ring.

use crate::chunk::{slice_ranges, ElemRange};
use crate::collective::{CollectiveDescriptor, CollectiveKind};
use crate::plan::{
    check_builder_inputs, push_chunked, sort_chunk_major, Algorithm, AlgorithmKind, Plan,
};
use crate::primitive::{PrimitiveKind, PrimitiveStep, SrcBuf};
use crate::CollectiveError;
use dfccl_transport::Topology;

/// The hierarchical schedule generator.
pub struct HierarchicalAlgorithm;

/// Emit one macro step of a ring phase: peers derive from the primitive
/// kind, chunks split at `max_chunk`, and the shared step counter advances.
#[allow(clippy::too_many_arguments)]
fn emit_phase_step(
    phase: &mut Vec<PrimitiveStep>,
    kind: PrimitiveKind,
    src: Option<ElemRange>,
    src_buf: SrcBuf,
    dst: Option<ElemRange>,
    next: usize,
    prev: usize,
    step: &mut u32,
    max_chunk: usize,
    channels: usize,
) {
    push_chunked(
        phase,
        kind,
        src,
        src_buf,
        dst,
        kind.has_send().then_some(next),
        kind.has_recv().then_some(prev),
        *step,
        max_chunk,
        channels,
    );
    *step += 1;
}

/// Node grouping of a device set: rank indices per machine, in rank order.
fn node_groups(desc: &CollectiveDescriptor, topology: &Topology) -> Option<Vec<Vec<usize>>> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (rank, &gpu) in desc.devices.iter().enumerate() {
        let machine = topology.machine_of(gpu)?;
        match groups.iter_mut().find(|(m, _)| *m == machine) {
            Some((_, g)) => g.push(rank),
            None => groups.push((machine, vec![rank])),
        }
    }
    if groups.len() < 2 {
        return None;
    }
    let k = groups[0].1.len();
    if groups.iter().any(|(_, g)| g.len() != k) {
        return None;
    }
    Some(groups.into_iter().map(|(_, g)| g).collect())
}

impl Algorithm for HierarchicalAlgorithm {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Hierarchical
    }

    fn supports(&self, desc: &CollectiveDescriptor, topology: &Topology) -> bool {
        desc.kind == CollectiveKind::AllReduce && node_groups(desc, topology).is_some()
    }

    fn build_plan_striped(
        &self,
        desc: &CollectiveDescriptor,
        rank: usize,
        max_chunk_elems: usize,
        channels: usize,
        topology: &Topology,
    ) -> Result<Plan, CollectiveError> {
        check_builder_inputs(desc, rank, max_chunk_elems, channels)?;
        if desc.kind != CollectiveKind::AllReduce {
            return Err(CollectiveError::UnsupportedAlgorithm {
                algorithm: AlgorithmKind::Hierarchical,
                kind: desc.kind,
            });
        }
        let Some(groups) = node_groups(desc, topology) else {
            return Err(CollectiveError::UnsupportedTopology(
                "hierarchical all-reduce needs >= 2 nodes with equal-size rank groups".into(),
            ));
        };

        let my_group = groups
            .iter()
            .position(|g| g.contains(&rank))
            .expect("rank is grouped");
        let local = &groups[my_group];
        let k = local.len();
        let j = local.iter().position(|&r| r == rank).expect("rank local");
        let n_nodes = groups.len();

        // One slice per local rank; slice `j`'s leaders are the local-index-j
        // ranks of every node.
        let slices = slice_ranges(desc.count, k);
        let slice = |idx: usize| slices[idx % k];
        let leaders: Vec<usize> = groups.iter().map(|g| g[j]).collect();

        let mut steps: Vec<PrimitiveStep> = Vec::new();
        let mut step = 0u32;

        // Phase 1: intra-node ring reduce-scatter over the whole buffer.
        // Local rank j ends up owning slice j (node partial, in recv_buf).
        if k >= 2 {
            let next = local[(j + 1) % k];
            let prev = local[(j + k - 1) % k];
            let mut phase = Vec::new();
            let mut emit = |kind, src, src_buf, dst| {
                emit_phase_step(
                    &mut phase,
                    kind,
                    src,
                    src_buf,
                    dst,
                    next,
                    prev,
                    &mut step,
                    max_chunk_elems,
                    channels,
                )
            };
            emit(
                PrimitiveKind::Send,
                Some(slice(j + k - 1)),
                SrcBuf::Send,
                None,
            );
            for t in 1..k - 1 {
                emit(
                    PrimitiveKind::RecvReduceSend,
                    Some(slice(j + k - 1 - t)),
                    SrcBuf::Send,
                    None,
                );
            }
            // The node partial of slice j lands in the recv buffer in place.
            emit(
                PrimitiveKind::RecvReduceCopy,
                Some(slice(j)),
                SrcBuf::Send,
                Some(slice(j)),
            );
            sort_chunk_major(&mut phase);
            steps.extend(phase);
        }

        // Phase 2: ring all-reduce of slice j among its node leaders. The
        // local operand is the phase-1 partial in the recv buffer (or the
        // original input when the node has a single rank and phase 1 ran on
        // nobody).
        let my_slice = slice(j);
        let operand = if k == 1 { SrcBuf::Send } else { SrcBuf::Recv };
        if my_slice.len > 0 {
            let g = my_group;
            let next = leaders[(g + 1) % n_nodes];
            let prev = leaders[(g + n_nodes - 1) % n_nodes];
            let subs = slice_ranges(my_slice.len, n_nodes);
            let sub = |idx: usize| {
                let s = subs[idx % n_nodes];
                ElemRange::new(my_slice.offset + s.offset, s.len)
            };
            let mut phase = Vec::new();
            let mut emit = |kind, src, src_buf, dst| {
                emit_phase_step(
                    &mut phase,
                    kind,
                    src,
                    src_buf,
                    dst,
                    next,
                    prev,
                    &mut step,
                    max_chunk_elems,
                    channels,
                )
            };
            emit(PrimitiveKind::Send, Some(sub(g)), operand, None);
            for t in 1..n_nodes - 1 {
                emit(
                    PrimitiveKind::RecvReduceSend,
                    Some(sub(g + n_nodes - t)),
                    operand,
                    None,
                );
            }
            let owned = sub(g + 1);
            emit(
                PrimitiveKind::RecvReduceCopySend,
                Some(owned),
                operand,
                Some(owned),
            );
            for t in 1..n_nodes - 1 {
                emit(
                    PrimitiveKind::RecvCopySend,
                    None,
                    SrcBuf::Send,
                    Some(sub(g + n_nodes - t + 1)),
                );
            }
            emit(PrimitiveKind::Recv, None, SrcBuf::Send, Some(sub(g + 2)));
            sort_chunk_major(&mut phase);
            steps.extend(phase);
        }

        // Phase 3: intra-node ring all-gather of the globally-reduced slices.
        if k >= 2 {
            let next = local[(j + 1) % k];
            let prev = local[(j + k - 1) % k];
            let mut phase = Vec::new();
            let mut emit = |kind, src, src_buf, dst| {
                emit_phase_step(
                    &mut phase,
                    kind,
                    src,
                    src_buf,
                    dst,
                    next,
                    prev,
                    &mut step,
                    max_chunk_elems,
                    channels,
                )
            };
            // Slice j is already in place in this rank's recv buffer.
            emit(PrimitiveKind::Send, Some(slice(j)), SrcBuf::Recv, None);
            for t in 1..k - 1 {
                emit(
                    PrimitiveKind::RecvCopySend,
                    None,
                    SrcBuf::Send,
                    Some(slice(j + k - t)),
                );
            }
            emit(PrimitiveKind::Recv, None, SrcBuf::Send, Some(slice(j + 1)));
            sort_chunk_major(&mut phase);
            steps.extend(phase);
        }

        Ok(Plan::new(AlgorithmKind::Hierarchical, steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::redop::ReduceOp;
    use gpu_sim::GpuId;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    fn desc(n: usize, count: usize) -> CollectiveDescriptor {
        CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, gpus(n))
    }

    #[test]
    fn requires_multi_node_uniform_groups() {
        let a = HierarchicalAlgorithm;
        // Flat single-node topology: unsupported.
        assert!(!a.supports(&desc(4, 16), &Topology::flat(4)));
        // Two uniform nodes of two: supported.
        let topo = Topology::uniform_cluster(2, 2);
        assert!(a.supports(&desc(4, 16), &topo));
        // Non-uniform split (3 ranks over 2x2 cluster -> groups of 2 and 1).
        assert!(!a.supports(&desc(3, 16), &topo));
        assert!(matches!(
            a.build_plan(&desc(3, 16), 0, 8, &topo),
            Err(CollectiveError::UnsupportedTopology(_))
        ));
        // Non-all-reduce collectives are out of scope.
        let bc = CollectiveDescriptor::broadcast(16, DataType::F32, 0, gpus(4));
        assert!(!a.supports(&bc, &topo));
        assert!(matches!(
            a.build_plan(&bc, 0, 8, &topo),
            Err(CollectiveError::UnsupportedAlgorithm { .. })
        ));
    }

    #[test]
    fn two_eight_gpu_servers_group_by_machine() {
        let topo = Topology::two_eight_gpu_servers();
        let d = desc(16, 64);
        let groups = node_groups(&d, &topo).unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (0..8).collect::<Vec<_>>());
        assert_eq!(groups[1], (8..16).collect::<Vec<_>>());
    }

    #[test]
    fn inter_node_traffic_stays_on_slice_leaders() {
        // On a 2x4 cluster, rank j only exchanges across nodes with the rank
        // of the same local index on the other node (j +- 4).
        let topo = Topology::uniform_cluster(2, 4);
        let d = desc(8, 64);
        for rank in 0..8 {
            let plan = HierarchicalAlgorithm
                .build_plan(&d, rank, 8, &topo)
                .unwrap();
            plan.validate(rank, 8).unwrap();
            let mirror = (rank + 4) % 8;
            for &peer in plan.send_peers().iter().chain(plan.recv_peers()) {
                let same_node = peer / 4 == rank / 4;
                assert!(
                    same_node || peer == mirror,
                    "rank {rank} talks across nodes to {peer}, expected only {mirror}"
                );
            }
        }
    }

    #[test]
    fn phases_are_individually_chunk_major() {
        // Within a phase, (chunk, step) must be lexicographically ascending
        // (the chunk-major invariant). A descent is only legal at a phase
        // boundary, where the monotone step counter jumps above everything
        // seen before; at most two boundaries exist (three phases).
        let topo = Topology::uniform_cluster(2, 2);
        let d = desc(4, 4000);
        for rank in 0..4 {
            let plan = HierarchicalAlgorithm
                .build_plan(&d, rank, 100, &topo)
                .unwrap();
            assert!(!plan.is_empty());
            let mut descents = 0;
            let mut max_step = plan.steps[0].step;
            for w in plan.steps.windows(2) {
                let a = (w[0].chunk_index, w[0].step);
                let b = (w[1].chunk_index, w[1].step);
                if b < a {
                    descents += 1;
                    assert!(
                        w[1].step > max_step,
                        "rank {rank}: descent without a phase boundary at {b:?}"
                    );
                }
                max_step = max_step.max(w[1].step);
            }
            assert!(descents <= 2, "rank {rank}: more than three phases?");
        }
    }

    #[test]
    fn single_rank_nodes_degenerate_to_flat_inter_node_ring() {
        let topo = Topology::uniform_cluster(3, 1);
        let d = desc(3, 12);
        for rank in 0..3 {
            let plan = HierarchicalAlgorithm
                .build_plan(&d, rank, 4, &topo)
                .unwrap();
            // No intra phases: pure ring among the three nodes.
            assert_eq!(plan.send_peers(), vec![(rank + 1) % 3]);
            assert_eq!(plan.recv_peers(), vec![(rank + 2) % 3]);
            // Operands come from the send buffer (no phase-1 partial exists).
            assert!(plan
                .steps
                .iter()
                .filter(|s| s.kind.has_reduce())
                .all(|s| s.src_buf == SrcBuf::Send));
        }
    }
}
