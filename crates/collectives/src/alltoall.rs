//! Pairwise-exchange schedules: all-to-all and point-to-point send/recv over
//! the dense connector mesh.
//!
//! All-to-all is the canonical dense-mesh collective — the backbone of MoE
//! expert parallelism — and the one schedule family that uses the *full*
//! directed `(src, dst)` pair space the peer-addressed transport exists for
//! (a ring touches `n` edges, a tree `n-1`; an all-to-all touches `n(n-1)`).
//!
//! The schedule is the classic **linear shift**: at shift `s ∈ 1..n`, rank
//! `r` sends its slice `(r+s) mod n` to rank `(r+s) mod n` and receives slice
//! `(r-s) mod n` from rank `(r-s) mod n`; the rank's own slice is a local
//! copy at shift 0. Every directed edge carries exactly one macro step's
//! worth of data, so per-edge FIFO pairing is trivially consistent.
//!
//! ## Ordering and deadlock freedom
//!
//! Within a shift, the send half is emitted at step `2s-1` and the recv half
//! at step `2s`, and the final plan is sorted chunk-major like every other
//! family. With 1-slot connectors this is deadlock-free by the usual lattice
//! argument: a blocked send at `(chunk k+1, step 2s-1)` waits for its peer to
//! pass `(k, 2s)` (strictly smaller chunk), and a blocked recv at `(k, 2s)`
//! waits for its peer to pass `(k, 2s-1)` (same chunk, smaller step) — every
//! wait-for edge points to a strictly earlier position in the shared
//! `(chunk, step)` order, so no cycle can form. Crucially the send half
//! *precedes* the recv half of the same shift: the reverse order would have
//! every rank waiting for a chunk nobody has published yet.
//!
//! Point-to-point send/recv is the degenerate two-rank case: rank 0 emits
//! chunked `Send` primitives, rank 1 the matching `Recv`s.
//!
//! Like every plan IR schedule, these primitives are single-chunk and
//! non-blocking, so the daemon kernel preempts dense-mesh plans at every
//! chunk boundary without any executor changes — preemption safety is a
//! property of the primitive contract, not of the schedule's shape
//! (asserted end-to-end by the preemption-storm test in
//! `tests/algorithms.rs`).

use crate::chunk::ElemRange;
use crate::collective::{CollectiveDescriptor, CollectiveKind};
use crate::plan::{
    check_builder_inputs, push_chunked, sort_chunk_major, Algorithm, AlgorithmKind, Plan,
};
use crate::primitive::{PrimitiveKind, SrcBuf};
use crate::CollectiveError;
use dfccl_transport::Topology;

/// The pairwise-exchange schedule generator (all-to-all, send/recv).
pub struct PairwiseAlgorithm;

impl Algorithm for PairwiseAlgorithm {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Pairwise
    }

    fn supports(&self, desc: &CollectiveDescriptor, _topology: &Topology) -> bool {
        matches!(
            desc.kind,
            CollectiveKind::AllToAll | CollectiveKind::SendRecv
        )
    }

    fn build_plan_striped(
        &self,
        desc: &CollectiveDescriptor,
        rank: usize,
        max_chunk_elems: usize,
        channels: usize,
        _topology: &Topology,
    ) -> Result<Plan, CollectiveError> {
        check_builder_inputs(desc, rank, max_chunk_elems, channels)?;
        match desc.kind {
            CollectiveKind::AllToAll => Ok(all_to_all_plan(
                desc.count,
                desc.num_ranks(),
                rank,
                max_chunk_elems,
                channels,
            )),
            CollectiveKind::SendRecv => {
                Ok(send_recv_plan(desc.count, rank, max_chunk_elems, channels))
            }
            other => Err(CollectiveError::UnsupportedAlgorithm {
                algorithm: AlgorithmKind::Pairwise,
                kind: other,
            }),
        }
    }
}

/// Linear-shift all-to-all: `count` elements per (rank, peer) pair, `n - 1`
/// pairwise exchanges plus the local copy of the rank's own slice.
fn all_to_all_plan(count: usize, n: usize, rank: usize, max_chunk: usize, channels: usize) -> Plan {
    let slice = |idx: usize| ElemRange::new((idx % n) * count, count);
    let mut steps = Vec::new();

    // Shift 0: the rank's own slice never crosses the wire.
    push_chunked(
        &mut steps,
        PrimitiveKind::Copy,
        Some(slice(rank)),
        SrcBuf::Send,
        Some(slice(rank)),
        None,
        None,
        0,
        max_chunk,
        channels,
    );
    for s in 1..n {
        let to = (rank + s) % n;
        let from = (rank + n - s) % n;
        // Send before recv within the shift (see the module docs).
        push_chunked(
            &mut steps,
            PrimitiveKind::Send,
            Some(slice(to)),
            SrcBuf::Send,
            None,
            Some(to),
            None,
            (2 * s - 1) as u32,
            max_chunk,
            channels,
        );
        push_chunked(
            &mut steps,
            PrimitiveKind::Recv,
            None,
            SrcBuf::Send,
            Some(slice(from)),
            None,
            Some(from),
            (2 * s) as u32,
            max_chunk,
            channels,
        );
    }
    sort_chunk_major(&mut steps);
    Plan::new(AlgorithmKind::Pairwise, steps)
}

/// Point-to-point transfer of `count` elements from rank 0 to rank 1.
fn send_recv_plan(count: usize, rank: usize, max_chunk: usize, channels: usize) -> Plan {
    let whole = ElemRange::new(0, count);
    let mut steps = Vec::new();
    if rank == 0 {
        push_chunked(
            &mut steps,
            PrimitiveKind::Send,
            Some(whole),
            SrcBuf::Send,
            None,
            Some(1),
            None,
            0,
            max_chunk,
            channels,
        );
    } else {
        push_chunked(
            &mut steps,
            PrimitiveKind::Recv,
            None,
            SrcBuf::Send,
            Some(whole),
            None,
            Some(0),
            0,
            max_chunk,
            channels,
        );
    }
    sort_chunk_major(&mut steps);
    Plan::new(AlgorithmKind::Pairwise, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use gpu_sim::GpuId;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    fn a2a(count: usize, n: usize) -> CollectiveDescriptor {
        CollectiveDescriptor::all_to_all(count, DataType::F32, gpus(n))
    }

    #[test]
    fn supports_all_to_all_and_send_recv_only() {
        let a = PairwiseAlgorithm;
        let topo = Topology::flat(4);
        assert!(a.supports(&a2a(8, 4), &topo));
        let p2p = CollectiveDescriptor::send_recv(8, DataType::F32, GpuId(0), GpuId(1));
        assert!(a.supports(&p2p, &topo));
        let ag = CollectiveDescriptor::all_gather(8, DataType::F32, gpus(4));
        assert!(!a.supports(&ag, &topo));
        assert!(matches!(
            a.build_plan(&ag, 0, 64, &topo),
            Err(CollectiveError::UnsupportedAlgorithm { .. })
        ));
    }

    #[test]
    fn all_to_all_addresses_every_peer_in_both_directions() {
        let n = 5;
        let topo = Topology::flat(n);
        for rank in 0..n {
            let plan = PairwiseAlgorithm
                .build_plan(&a2a(6, n), rank, 1024, &topo)
                .unwrap();
            plan.validate(rank, n).unwrap();
            let others: Vec<usize> = (0..n).filter(|&p| p != rank).collect();
            assert_eq!(plan.send_peers(), others, "rank {rank} send peers");
            assert_eq!(plan.recv_peers(), others, "rank {rank} recv peers");
        }
    }

    #[test]
    fn all_to_all_moves_slice_j_to_rank_j() {
        let n = 4;
        let count = 3;
        let topo = Topology::flat(n);
        for rank in 0..n {
            let plan = PairwiseAlgorithm
                .build_plan(&a2a(count, n), rank, 1024, &topo)
                .unwrap();
            for step in &plan.steps {
                if let Some(to) = step.send_to {
                    // The slice sent to peer `to` is read from block `to`.
                    let src = step.src.expect("send reads a slice");
                    assert_eq!(src.offset / count, to, "rank {rank}");
                }
                if let Some(from) = step.recv_from {
                    // The slice received from peer `from` lands in block `from`.
                    let dst = step.dst.expect("recv writes a slice");
                    assert_eq!(dst.offset / count, from, "rank {rank}");
                }
            }
            // The local copy covers the rank's own block.
            let copy = plan
                .steps
                .iter()
                .find(|s| s.kind == PrimitiveKind::Copy)
                .expect("own slice is copied locally");
            assert_eq!(copy.src.unwrap().offset / count, rank);
        }
    }

    #[test]
    fn all_to_all_plans_are_chunk_major_with_send_before_recv_per_shift() {
        let n = 4;
        let topo = Topology::flat(n);
        for rank in 0..n {
            let plan = PairwiseAlgorithm
                .build_plan(&a2a(40, n), rank, 8, &topo)
                .unwrap();
            let order: Vec<(u32, u32)> =
                plan.steps.iter().map(|p| (p.chunk_index, p.step)).collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(order, sorted, "rank {rank} plan is not chunk-major");
            // Odd steps send, even non-zero steps receive: the send half of a
            // shift always sorts before its recv half.
            for p in &plan.steps {
                if p.step == 0 {
                    assert_eq!(p.kind, PrimitiveKind::Copy);
                } else if p.step % 2 == 1 {
                    assert_eq!(p.kind, PrimitiveKind::Send);
                } else {
                    assert_eq!(p.kind, PrimitiveKind::Recv);
                }
            }
        }
    }

    #[test]
    fn send_recv_plan_roles_are_asymmetric() {
        let topo = Topology::flat(2);
        let desc = CollectiveDescriptor::send_recv(10, DataType::F32, GpuId(0), GpuId(1));
        let sender = PairwiseAlgorithm.build_plan(&desc, 0, 4, &topo).unwrap();
        assert!(sender.steps.iter().all(|s| s.kind == PrimitiveKind::Send));
        assert_eq!(sender.send_peers(), vec![1]);
        assert!(sender.recv_peers().is_empty());
        let receiver = PairwiseAlgorithm.build_plan(&desc, 1, 4, &topo).unwrap();
        assert!(receiver.steps.iter().all(|s| s.kind == PrimitiveKind::Recv));
        assert_eq!(receiver.recv_peers(), vec![0]);
        assert!(receiver.send_peers().is_empty());
        // 10 elements at chunk 4 = 3 chunks on each side.
        assert_eq!(sender.len(), 3);
        assert_eq!(receiver.len(), 3);
    }

    #[test]
    fn two_rank_all_to_all_degenerates_to_one_exchange() {
        let topo = Topology::flat(2);
        let plan = PairwiseAlgorithm
            .build_plan(&a2a(4, 2), 0, 1024, &topo)
            .unwrap();
        let kinds: Vec<PrimitiveKind> = plan.steps.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PrimitiveKind::Copy,
                PrimitiveKind::Send,
                PrimitiveKind::Recv
            ]
        );
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let topo = Topology::flat(4);
        assert!(matches!(
            PairwiseAlgorithm.build_plan(&a2a(8, 4), 9, 64, &topo),
            Err(CollectiveError::InvalidRank { rank: 9, size: 4 })
        ));
        assert!(matches!(
            PairwiseAlgorithm.build_plan(&a2a(8, 4), 0, 0, &topo),
            Err(CollectiveError::InvalidChunkSize(0))
        ));
    }
}
