//! Ring-algorithm primitive-sequence generation.
//!
//! In a ring collective, GPUs are organised into a logical ring (rank `r`
//! sends to rank `r+1` and receives from rank `r-1`), and each rank is
//! assigned a primitive sequence based on its ring position. Data is divided
//! into per-rank slices and further into regular chunks so every connector
//! transfer is bounded and every chunk boundary is a preemption opportunity.
//!
//! The sequences generated here follow the classic NCCL ring schedules:
//!
//! * **all-reduce** — `n-1` reduce-scatter steps followed by `n-1` all-gather
//!   steps (`Send`, `RecvReduceSend`…, `RecvReduceCopySend`, `RecvCopySend`…,
//!   `Recv`).
//! * **all-gather** — local copy, then `Send`, `RecvCopySend`…, `Recv`.
//! * **reduce-scatter** — `Send`, `RecvReduceSend`…, `RecvReduceCopy`.
//! * **reduce** — a single pipeline along the ring ending at the root.
//! * **broadcast** — a single pipeline along the ring starting at the root.
//!
//! Every step names its peers explicitly (`send_to = rank+1`,
//! `recv_from = rank-1`), so the transport layer materialises exactly the
//! ring's `n` directed edges out of the connector mesh.

use crate::chunk::{slice_ranges, ElemRange};
use crate::collective::{CollectiveDescriptor, CollectiveKind};
use crate::plan::{
    check_builder_inputs, push_chunked, sort_chunk_major, Algorithm, AlgorithmKind, Plan,
};
use crate::primitive::{PrimitiveKind, PrimitiveStep, SrcBuf};
use crate::CollectiveError;
use dfccl_transport::Topology;

/// Default maximum number of elements per chunk (128 KiB of f32).
pub const DEFAULT_CHUNK_ELEMS: usize = 32 * 1024;

/// The ring schedule generator.
pub struct RingAlgorithm;

impl Algorithm for RingAlgorithm {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Ring
    }

    fn supports(&self, desc: &CollectiveDescriptor, _topology: &Topology) -> bool {
        // All-to-all and point-to-point are dense-mesh operations scheduled
        // by the pairwise family; a ring has no sensible schedule for them.
        !matches!(
            desc.kind,
            CollectiveKind::AllToAll | CollectiveKind::SendRecv
        )
    }

    fn build_plan_striped(
        &self,
        desc: &CollectiveDescriptor,
        rank: usize,
        max_chunk_elems: usize,
        channels: usize,
        _topology: &Topology,
    ) -> Result<Plan, CollectiveError> {
        build_plan_striped(desc, rank, max_chunk_elems, channels)
    }
}

/// Emission context for one rank of the ring: peers are fixed by ring
/// position, the step counter advances per macro step.
struct RingEmitter {
    steps: Vec<PrimitiveStep>,
    next: usize,
    prev: usize,
    step: u32,
    channels: usize,
}

impl RingEmitter {
    fn new(n: usize, rank: usize, channels: usize) -> Self {
        RingEmitter {
            steps: Vec::new(),
            next: (rank + 1) % n,
            prev: (rank + n - 1) % n,
            step: 0,
            channels,
        }
    }

    fn emit(
        &mut self,
        kind: PrimitiveKind,
        src: Option<ElemRange>,
        dst: Option<ElemRange>,
        max_chunk: usize,
    ) {
        self.emit_at(kind, src, dst, self.step, max_chunk);
        self.step += 1;
    }

    fn emit_at(
        &mut self,
        kind: PrimitiveKind,
        src: Option<ElemRange>,
        dst: Option<ElemRange>,
        step: u32,
        max_chunk: usize,
    ) {
        push_chunked(
            &mut self.steps,
            kind,
            src,
            SrcBuf::Send,
            dst,
            kind.has_send().then_some(self.next),
            kind.has_recv().then_some(self.prev),
            step,
            max_chunk,
            self.channels,
        );
    }

    fn finish(mut self) -> Plan {
        // Chunk-major pipelining (the NCCL loop structure): interleave the
        // macro steps so chunk `c` flows through the whole ring pipeline
        // before chunk `c+1` starts. The step-major order the builders emit
        // (all chunks of a macro step, then the next step) deadlocks once a
        // macro step has more chunks than a connector has slots: every rank
        // fills its send ring and blocks before reaching the step that would
        // drain its peer. Pairing is preserved — a step-`s` send on rank `r`
        // is consumed by the step-`s+1` primitive on rank `r+1` over the
        // *same* slice (hence the same chunk ranges), and the uniform
        // `s → s+1` shift keeps both sides' sorted `(chunk, step)` orders
        // aligned — so the in-flight window per connector drops to O(1)
        // chunks regardless of the collective size.
        sort_chunk_major(&mut self.steps);
        Plan::new(AlgorithmKind::Ring, self.steps)
    }
}

/// Build the unstriped (single-channel) ring primitive sequence executed by
/// `rank` for the collective described by `desc`, chunking transfers at
/// `max_chunk_elems` elements.
pub fn build_plan(
    desc: &CollectiveDescriptor,
    rank: usize,
    max_chunk_elems: usize,
) -> Result<Plan, CollectiveError> {
    build_plan_striped(desc, rank, max_chunk_elems, 1)
}

/// Build the ring primitive sequence executed by `rank`, chunking transfers
/// at `max_chunk_elems` elements and striping the chunk stream round-robin
/// across `channels` parallel connectors per ring edge.
pub fn build_plan_striped(
    desc: &CollectiveDescriptor,
    rank: usize,
    max_chunk_elems: usize,
    channels: usize,
) -> Result<Plan, CollectiveError> {
    check_builder_inputs(desc, rank, max_chunk_elems, channels)?;
    let n = desc.num_ranks();
    let k = channels;
    let plan = match desc.kind {
        CollectiveKind::AllReduce => all_reduce_plan(desc.count, n, rank, max_chunk_elems, k),
        CollectiveKind::AllGather => all_gather_plan(desc.count, n, rank, max_chunk_elems, k),
        CollectiveKind::ReduceScatter => {
            reduce_scatter_plan(desc.count, n, rank, max_chunk_elems, k)
        }
        CollectiveKind::Reduce => reduce_plan(
            desc.count,
            n,
            rank,
            desc.root.expect("validated root"),
            max_chunk_elems,
            k,
        ),
        CollectiveKind::Broadcast => broadcast_plan(
            desc.count,
            n,
            rank,
            desc.root.expect("validated root"),
            max_chunk_elems,
            k,
        ),
        CollectiveKind::AllToAll | CollectiveKind::SendRecv => {
            return Err(CollectiveError::UnsupportedAlgorithm {
                algorithm: AlgorithmKind::Ring,
                kind: desc.kind,
            })
        }
    };
    Ok(plan)
}

/// Ring all-reduce: `count` input elements, `count` output elements, `2n-1`
/// macro steps (the first send and the final recv are half-steps).
fn all_reduce_plan(count: usize, n: usize, rank: usize, max_chunk: usize, channels: usize) -> Plan {
    let slices = slice_ranges(count, n);
    let slice = |idx: usize| slices[idx % n];
    let mut e = RingEmitter::new(n, rank, channels);

    // Reduce-scatter phase.
    e.emit(PrimitiveKind::Send, Some(slice(rank)), None, max_chunk);
    for k in 1..n - 1 {
        let s = slice(rank + n - k);
        e.emit(PrimitiveKind::RecvReduceSend, Some(s), None, max_chunk);
    }
    // The slice that becomes fully reduced at this rank.
    let owned = slice(rank + 1);
    e.emit(
        PrimitiveKind::RecvReduceCopySend,
        Some(owned),
        Some(owned),
        max_chunk,
    );

    // All-gather phase: receive the remaining reduced slices.
    for j in 1..n - 1 {
        let s = slice(rank + n - j + 1);
        e.emit(PrimitiveKind::RecvCopySend, None, Some(s), max_chunk);
    }
    let last = slice(rank + 2);
    e.emit(PrimitiveKind::Recv, None, Some(last), max_chunk);
    e.finish()
}

/// Ring all-gather: `count` input elements per rank, `n * count` output.
fn all_gather_plan(count: usize, n: usize, rank: usize, max_chunk: usize, channels: usize) -> Plan {
    let own = ElemRange::new(0, count);
    let block = |idx: usize| ElemRange::new((idx % n) * count, count);
    let mut e = RingEmitter::new(n, rank, channels);

    // Local copy of the rank's own contribution into its output block.
    e.emit(PrimitiveKind::Copy, Some(own), Some(block(rank)), max_chunk);
    // Send the contribution around the ring.
    e.emit(PrimitiveKind::Send, Some(own), None, max_chunk);
    for k in 1..n - 1 {
        let b = block(rank + n - k);
        e.emit(PrimitiveKind::RecvCopySend, None, Some(b), max_chunk);
    }
    let last = block(rank + 1);
    e.emit(PrimitiveKind::Recv, None, Some(last), max_chunk);
    e.finish()
}

/// Ring reduce-scatter: `n * count` input elements per rank, `count` output.
fn reduce_scatter_plan(
    count: usize,
    n: usize,
    rank: usize,
    max_chunk: usize,
    channels: usize,
) -> Plan {
    let slice = |idx: usize| ElemRange::new((idx % n) * count, count);
    let out = ElemRange::new(0, count);
    let mut e = RingEmitter::new(n, rank, channels);

    e.emit(
        PrimitiveKind::Send,
        Some(slice(rank + n - 1)),
        None,
        max_chunk,
    );
    for k in 1..n - 1 {
        let s = slice(rank + n - 1 - k);
        e.emit(PrimitiveKind::RecvReduceSend, Some(s), None, max_chunk);
    }
    e.emit(
        PrimitiveKind::RecvReduceCopy,
        Some(slice(rank)),
        Some(out),
        max_chunk,
    );
    e.finish()
}

/// Ring reduce: the reduction flows along the ring and ends at the root.
fn reduce_plan(
    count: usize,
    n: usize,
    rank: usize,
    root: usize,
    max_chunk: usize,
    channels: usize,
) -> Plan {
    let whole = ElemRange::new(0, count);
    // Position in the chain that starts just after the root and ends at the root.
    let pos = (rank + n - root - 1) % n;
    let mut e = RingEmitter::new(n, rank, channels);
    if pos == 0 {
        e.emit_at(PrimitiveKind::Send, Some(whole), None, 0, max_chunk);
    } else if pos < n - 1 {
        e.emit_at(
            PrimitiveKind::RecvReduceSend,
            Some(whole),
            None,
            pos as u32,
            max_chunk,
        );
    } else {
        // This is the root.
        e.emit_at(
            PrimitiveKind::RecvReduceCopy,
            Some(whole),
            Some(whole),
            pos as u32,
            max_chunk,
        );
    }
    e.finish()
}

/// Ring broadcast: data flows from the root around the ring.
fn broadcast_plan(
    count: usize,
    n: usize,
    rank: usize,
    root: usize,
    max_chunk: usize,
    channels: usize,
) -> Plan {
    let whole = ElemRange::new(0, count);
    // Position in the chain that starts at the root.
    let pos = (rank + n - root) % n;
    let mut e = RingEmitter::new(n, rank, channels);
    if pos == 0 {
        // Root: make its own output available locally, then send.
        e.emit_at(PrimitiveKind::Copy, Some(whole), Some(whole), 0, max_chunk);
        e.emit_at(PrimitiveKind::Send, Some(whole), None, 1, max_chunk);
    } else if pos < n - 1 {
        e.emit_at(
            PrimitiveKind::RecvCopySend,
            None,
            Some(whole),
            pos as u32,
            max_chunk,
        );
    } else {
        e.emit_at(
            PrimitiveKind::Recv,
            None,
            Some(whole),
            pos as u32,
            max_chunk,
        );
    }
    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::redop::ReduceOp;
    use gpu_sim::GpuId;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    #[test]
    fn all_reduce_plan_has_expected_macro_steps() {
        let desc = CollectiveDescriptor::all_reduce(16, DataType::F32, ReduceOp::Sum, gpus(4));
        let plan = build_plan(&desc, 0, 1024).unwrap();
        // 2n-1 macro steps, one chunk each (16/4 = 4 elements per slice).
        assert_eq!(plan.algorithm, AlgorithmKind::Ring);
        assert_eq!(plan.len(), 7);
        let steps = &plan.steps;
        assert_eq!(steps[0].kind, PrimitiveKind::Send);
        assert_eq!(steps[1].kind, PrimitiveKind::RecvReduceSend);
        assert_eq!(steps[2].kind, PrimitiveKind::RecvReduceSend);
        assert_eq!(steps[3].kind, PrimitiveKind::RecvReduceCopySend);
        assert_eq!(steps[4].kind, PrimitiveKind::RecvCopySend);
        assert_eq!(steps[5].kind, PrimitiveKind::RecvCopySend);
        assert_eq!(steps[6].kind, PrimitiveKind::Recv);
    }

    #[test]
    fn ring_steps_address_ring_neighbours() {
        let n = 4;
        let desc = CollectiveDescriptor::all_reduce(16, DataType::F32, ReduceOp::Sum, gpus(n));
        for rank in 0..n {
            let plan = build_plan(&desc, rank, 1024).unwrap();
            let next = (rank + 1) % n;
            let prev = (rank + n - 1) % n;
            assert_eq!(plan.send_peers(), vec![next], "rank {rank}");
            assert_eq!(plan.recv_peers(), vec![prev], "rank {rank}");
            for s in &plan.steps {
                assert_eq!(s.src_buf, SrcBuf::Send);
            }
            plan.validate(rank, n).unwrap();
        }
    }

    #[test]
    fn all_reduce_two_ranks_degenerates_correctly() {
        let desc = CollectiveDescriptor::all_reduce(8, DataType::F32, ReduceOp::Sum, gpus(2));
        let plan = build_plan(&desc, 1, 1024).unwrap();
        let kinds: Vec<PrimitiveKind> = plan.steps.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PrimitiveKind::Send,
                PrimitiveKind::RecvReduceCopySend,
                PrimitiveKind::Recv
            ]
        );
    }

    #[test]
    fn chunking_splits_large_slices() {
        let desc = CollectiveDescriptor::all_reduce(4000, DataType::F32, ReduceOp::Sum, gpus(4));
        let plan = build_plan(&desc, 2, 100).unwrap();
        // Each slice is 1000 elements = 10 chunks; 7 macro steps.
        assert_eq!(plan.len(), 70);
        assert!(plan.steps.iter().all(|p| p.elems() <= 100));
        // Chunk indices restart at each macro step.
        assert_eq!(plan.steps.iter().filter(|p| p.chunk_index == 0).count(), 7);
    }

    #[test]
    fn plans_are_chunk_major_pipelined() {
        // Regression test for the connector-capacity deadlock: plans must be
        // ordered chunk-major (chunk c flows through every macro step before
        // chunk c+1 starts), so the number of in-flight chunks per connector
        // stays O(1) instead of O(chunks per macro step). Step-major plans
        // wedge as soon as a macro step has more chunks than the connector
        // has slots: every rank fills its send ring before reaching the step
        // that would drain its peer's.
        for kind_desc in [
            CollectiveDescriptor::all_reduce(4000, DataType::F32, ReduceOp::Sum, gpus(4)),
            CollectiveDescriptor::all_gather(4000, DataType::F32, gpus(4)),
            CollectiveDescriptor::reduce_scatter(4000, DataType::F32, ReduceOp::Sum, gpus(4)),
            CollectiveDescriptor::reduce(4000, DataType::F32, ReduceOp::Sum, 1, gpus(4)),
            CollectiveDescriptor::broadcast(4000, DataType::F32, 1, gpus(4)),
        ] {
            for rank in 0..4 {
                let plan = build_plan(&kind_desc, rank, 100).unwrap();
                let order: Vec<(u32, u32)> =
                    plan.steps.iter().map(|p| (p.chunk_index, p.step)).collect();
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(
                    order, sorted,
                    "{:?} rank {rank} plan is not chunk-major",
                    kind_desc.kind
                );
            }
        }
    }

    #[test]
    fn all_gather_plan_covers_every_output_block() {
        let n = 4;
        let count = 12;
        for rank in 0..n {
            let desc = CollectiveDescriptor::all_gather(count, DataType::F32, gpus(n));
            let plan = build_plan(&desc, rank, 1024).unwrap();
            let mut covered: Vec<usize> = plan
                .steps
                .iter()
                .filter_map(|p| p.dst)
                .map(|d| d.offset / count)
                .collect();
            covered.sort_unstable();
            covered.dedup();
            assert_eq!(covered, (0..n).collect::<Vec<_>>(), "rank {rank}");
        }
    }

    #[test]
    fn reduce_scatter_plan_reads_every_input_slice() {
        let n = 3;
        let count = 5;
        for rank in 0..n {
            let desc =
                CollectiveDescriptor::reduce_scatter(count, DataType::F32, ReduceOp::Sum, gpus(n));
            let plan = build_plan(&desc, rank, 1024).unwrap();
            let mut slices: Vec<usize> = plan
                .steps
                .iter()
                .filter_map(|p| p.src)
                .map(|s| s.offset / count)
                .collect();
            slices.sort_unstable();
            slices.dedup();
            assert_eq!(slices.len(), n, "rank {rank} must touch all input slices");
        }
    }

    #[test]
    fn reduce_plan_roles_depend_on_ring_position() {
        let n = 4;
        let root = 2;
        let desc = CollectiveDescriptor::reduce(10, DataType::F32, ReduceOp::Sum, root, gpus(n));
        // Rank just after the root starts the pipeline.
        let starter = build_plan(&desc, 3, 1024).unwrap();
        assert_eq!(starter.steps[0].kind, PrimitiveKind::Send);
        // Intermediate ranks relay.
        let middle = build_plan(&desc, 0, 1024).unwrap();
        assert_eq!(middle.steps[0].kind, PrimitiveKind::RecvReduceSend);
        // The root terminates the pipeline.
        let root_plan = build_plan(&desc, root, 1024).unwrap();
        assert_eq!(root_plan.steps[0].kind, PrimitiveKind::RecvReduceCopy);
    }

    #[test]
    fn broadcast_plan_roles_depend_on_ring_position() {
        let n = 4;
        let root = 1;
        let desc = CollectiveDescriptor::broadcast(10, DataType::F32, root, gpus(n));
        let root_plan = build_plan(&desc, root, 1024).unwrap();
        assert_eq!(root_plan.steps[0].kind, PrimitiveKind::Copy);
        assert_eq!(root_plan.steps[1].kind, PrimitiveKind::Send);
        let relay = build_plan(&desc, 2, 1024).unwrap();
        assert_eq!(relay.steps[0].kind, PrimitiveKind::RecvCopySend);
        let last = build_plan(&desc, 0, 1024).unwrap();
        assert_eq!(last.steps[0].kind, PrimitiveKind::Recv);
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let desc = CollectiveDescriptor::all_reduce(8, DataType::F32, ReduceOp::Sum, gpus(2));
        assert!(matches!(
            build_plan(&desc, 5, 1024),
            Err(CollectiveError::InvalidRank { rank: 5, size: 2 })
        ));
    }

    #[test]
    fn invalid_descriptor_is_rejected() {
        let desc = CollectiveDescriptor::all_reduce(0, DataType::F32, ReduceOp::Sum, gpus(2));
        assert!(build_plan(&desc, 0, 1024).is_err());
    }

    #[test]
    fn zero_chunk_size_is_an_error_not_a_panic() {
        // A bad config must surface as a CollectiveError so the daemon thread
        // is never aborted by an assert.
        let desc = CollectiveDescriptor::all_reduce(8, DataType::F32, ReduceOp::Sum, gpus(2));
        assert!(matches!(
            build_plan(&desc, 0, 0),
            Err(CollectiveError::InvalidChunkSize(0))
        ));
    }

    #[test]
    fn small_counts_produce_empty_slices_without_panicking() {
        // count < n: some slices are empty, their macro steps emit no primitives.
        let desc = CollectiveDescriptor::all_reduce(2, DataType::F32, ReduceOp::Sum, gpus(4));
        for rank in 0..4 {
            let plan = build_plan(&desc, rank, 1024).unwrap();
            assert!(plan.steps.iter().all(|p| p.elems() > 0));
        }
    }
}
