//! # dfccl-collectives — collective algorithms over connectors
//!
//! GPU collectives (all-reduce, all-gather, reduce-scatter, reduce, broadcast)
//! are all composed from the same small set of *primitives* — fusions of the
//! basic `send`, `recv`, `reduce` and `copy` actions operating on the four
//! buffers of Fig. 5. This crate provides:
//!
//! * [`DataType`] / [`ReduceOp`] — element types and reduction operators.
//! * [`CollectiveDescriptor`] — the static description of one collective
//!   (kind, element count, data type, operator, root, device set, priority).
//! * [`DeviceBuffer`] — the local send/recv buffers.
//! * chunking helpers ([`chunk::chunk_ranges`], [`chunk::slice_ranges`]).
//! * [`PrimitiveStep`] — one peer-addressed primitive of a rank's schedule.
//! * [`Plan`] / [`Algorithm`] — the plan IR and the trait schedule
//!   generators implement. Four families are built in: [`ring`] (bandwidth-
//!   optimal), [`tree`] (double binary tree, latency-optimal for small
//!   payloads), [`hierarchical`] (two-level, for multi-node topologies) and
//!   [`alltoall`] (pairwise exchange for dense-mesh all-to-all and plain
//!   point-to-point send/recv).
//! * [`AlgorithmSelector`] — topology- and payload-aware selection among the
//!   families, overridable per collective and globally.
//! * [`executor`] — executes one primitive against the rank's connectors.
//!   Every primitive first checks that the connector conditions it needs are
//!   satisfied and only then runs; the caller decides how long to poll for
//!   readiness, which is exactly the preemption hook DFCCL's daemon kernel
//!   uses (Sec. 4.1/4.2) and which the NCCL-like baseline leaves unbounded.
//!   Because every plan is a sequence of single-chunk, non-blocking
//!   primitives, preemption safety is independent of the algorithm family.

pub mod alltoall;
pub mod buffer;
pub mod chunk;
pub mod collective;
pub mod cost;
pub mod datatype;
pub mod executor;
pub mod graph;
pub mod hierarchical;
pub mod plan;
pub mod primitive;
pub mod program;
pub mod redop;
pub mod ring;
pub mod selector;
pub mod tree;

pub use alltoall::PairwiseAlgorithm;
pub use buffer::DeviceBuffer;
pub use chunk::{chunk_ranges, slice_ranges, ElemRange};
pub use collective::{CollectiveDescriptor, CollectiveKind};
pub use cost::{estimate_completion_ns, CostError};
pub use datatype::DataType;
pub use executor::{
    execute_ready_instr, execute_ready_step, flush_pending, flush_pending_channel,
    flush_pending_compiled, instr_ready, run_plan_blocking, run_program_blocking, step_ready,
    validate_buffers, ExecError, PendingSend, PendingSends, StepOutcome,
};
pub use graph::{
    fused_coll_id, plan_fusion, FusedAllReduce, FusedSegment, GraphOp, RecordedCollective,
    FUSED_COLL_ID_BASE,
};
pub use hierarchical::HierarchicalAlgorithm;
pub use plan::{algorithm, Algorithm, AlgorithmKind, Plan};
pub use primitive::{PrimitiveKind, PrimitiveStep, SrcBuf};
pub use program::{ByteRange, CachedPlan, CompiledProgram, Instr, Lane, PlanCache, PlanKey};
pub use redop::ReduceOp;
pub use ring::{build_plan, build_plan_striped, RingAlgorithm};
pub use selector::{AlgorithmSelector, DEFAULT_TREE_THRESHOLD_BYTES};
pub use tree::DoubleBinaryTreeAlgorithm;

/// Errors raised while building or validating collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectiveError {
    /// The device set has fewer than two GPUs.
    DeviceSetTooSmall(usize),
    /// The device set names the same GPU more than once; a duplicated rank
    /// would corrupt rank addressing and schedule self-edges.
    DuplicateDevice(gpu_sim::GpuId),
    /// The element count is zero.
    EmptyCollective,
    /// The descriptor needs a reduce operator but none was given.
    MissingReduceOp,
    /// The descriptor needs a root rank but none was given (or it is out of range).
    InvalidRoot(Option<usize>),
    /// A buffer did not have the size the descriptor requires.
    BufferSizeMismatch {
        /// What the descriptor requires, in bytes.
        expected: usize,
        /// What the caller supplied, in bytes.
        actual: usize,
    },
    /// The rank index is outside the communicator.
    InvalidRank { rank: usize, size: usize },
    /// The configured chunk size is unusable (zero elements).
    InvalidChunkSize(usize),
    /// The configured channel count is unusable (zero, or beyond the u32
    /// channel-id space).
    InvalidChannelCount(usize),
    /// A point-to-point collective needs exactly two devices; the descriptor
    /// carried this many. (A repeated device is caught earlier, as
    /// [`CollectiveError::DuplicateDevice`].)
    InvalidPointToPoint(usize),
    /// The requested algorithm cannot schedule this collective kind.
    UnsupportedAlgorithm {
        algorithm: plan::AlgorithmKind,
        kind: CollectiveKind,
    },
    /// The requested algorithm cannot run over this topology / device set.
    UnsupportedTopology(String),
    /// A generated plan violated the peer-consistency invariants (a builder
    /// bug surfaced as an error instead of undefined scheduling).
    MalformedPlan {
        algorithm: plan::AlgorithmKind,
        rank: usize,
    },
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::DeviceSetTooSmall(n) => {
                write!(f, "collective needs at least 2 devices, got {n}")
            }
            CollectiveError::DuplicateDevice(d) => {
                write!(f, "device set names {d} more than once")
            }
            CollectiveError::EmptyCollective => write!(f, "collective has zero elements"),
            CollectiveError::MissingReduceOp => {
                write!(
                    f,
                    "reducing collective registered without a reduce operator"
                )
            }
            CollectiveError::InvalidRoot(r) => write!(f, "invalid root rank: {r:?}"),
            CollectiveError::BufferSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer size mismatch: expected {expected} bytes, got {actual}"
                )
            }
            CollectiveError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for collective over {size} devices"
                )
            }
            CollectiveError::InvalidChunkSize(n) => {
                write!(f, "chunk size must be positive, got {n}")
            }
            CollectiveError::InvalidChannelCount(n) => {
                write!(f, "channel count must be at least 1, got {n}")
            }
            CollectiveError::InvalidPointToPoint(n) => {
                write!(
                    f,
                    "point-to-point collective needs exactly 2 devices, got {n}"
                )
            }
            CollectiveError::UnsupportedAlgorithm { algorithm, kind } => {
                write!(f, "the {algorithm} algorithm cannot schedule {kind}")
            }
            CollectiveError::UnsupportedTopology(why) => {
                write!(f, "unsupported topology: {why}")
            }
            CollectiveError::MalformedPlan { algorithm, rank } => {
                write!(f, "{algorithm} produced a malformed plan for rank {rank}")
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_mention_the_problem() {
        assert!(CollectiveError::DeviceSetTooSmall(1)
            .to_string()
            .contains("2 devices"));
        assert!(CollectiveError::EmptyCollective
            .to_string()
            .contains("zero"));
        assert!(CollectiveError::MissingReduceOp
            .to_string()
            .contains("reduce"));
        assert!(CollectiveError::InvalidRoot(None)
            .to_string()
            .contains("root"));
        assert!(CollectiveError::BufferSizeMismatch {
            expected: 4,
            actual: 2
        }
        .to_string()
        .contains("expected 4"));
        assert!(CollectiveError::InvalidRank { rank: 8, size: 4 }
            .to_string()
            .contains("rank 8"));
        assert!(CollectiveError::InvalidChunkSize(0)
            .to_string()
            .contains("positive"));
        assert!(CollectiveError::InvalidChannelCount(0)
            .to_string()
            .contains("at least 1"));
        assert!(CollectiveError::DuplicateDevice(gpu_sim::GpuId(3))
            .to_string()
            .contains("more than once"));
        assert!(CollectiveError::InvalidPointToPoint(3)
            .to_string()
            .contains("got 3"));
        assert!(CollectiveError::UnsupportedAlgorithm {
            algorithm: plan::AlgorithmKind::DoubleBinaryTree,
            kind: CollectiveKind::AllGather,
        }
        .to_string()
        .contains("tree"));
        assert!(CollectiveError::UnsupportedTopology("one node".into())
            .to_string()
            .contains("one node"));
        assert!(CollectiveError::MalformedPlan {
            algorithm: plan::AlgorithmKind::Ring,
            rank: 2,
        }
        .to_string()
        .contains("rank 2"));
    }
}
