//! # dfccl-collectives — collective algorithms over connectors
//!
//! GPU collectives (all-reduce, all-gather, reduce-scatter, reduce, broadcast)
//! are all composed from the same small set of *primitives* — fusions of the
//! basic `send`, `recv`, `reduce` and `copy` actions operating on the four
//! buffers of Fig. 5. This crate provides:
//!
//! * [`DataType`] / [`ReduceOp`] — element types and reduction operators.
//! * [`CollectiveDescriptor`] — the static description of one collective
//!   (kind, element count, data type, operator, root, device set, priority).
//! * [`DeviceBuffer`] — the local send/recv buffers.
//! * chunking helpers ([`chunk::chunk_ranges`], [`chunk::slice_ranges`]).
//! * [`PrimitiveStep`] and the Ring-algorithm plan builder
//!   ([`ring::build_plan`]) that assigns each rank its primitive sequence.
//! * [`executor`] — executes one primitive against the rank's connectors.
//!   Every primitive first checks that the connector conditions it needs are
//!   satisfied and only then runs; the caller decides how long to poll for
//!   readiness, which is exactly the preemption hook DFCCL's daemon kernel
//!   uses (Sec. 4.1/4.2) and which the NCCL-like baseline leaves unbounded.

pub mod buffer;
pub mod chunk;
pub mod collective;
pub mod datatype;
pub mod executor;
pub mod primitive;
pub mod redop;
pub mod ring;

pub use buffer::DeviceBuffer;
pub use chunk::{chunk_ranges, slice_ranges, ElemRange};
pub use collective::{CollectiveDescriptor, CollectiveKind};
pub use datatype::DataType;
pub use executor::{
    execute_ready_step, run_plan_blocking, step_ready, validate_buffers, ExecError, StepOutcome,
};
pub use primitive::{PrimitiveKind, PrimitiveStep};
pub use redop::ReduceOp;
pub use ring::build_plan;

/// Errors raised while building or validating collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectiveError {
    /// The device set has fewer than two GPUs.
    DeviceSetTooSmall(usize),
    /// The element count is zero.
    EmptyCollective,
    /// The descriptor needs a reduce operator but none was given.
    MissingReduceOp,
    /// The descriptor needs a root rank but none was given (or it is out of range).
    InvalidRoot(Option<usize>),
    /// A buffer did not have the size the descriptor requires.
    BufferSizeMismatch {
        /// What the descriptor requires, in bytes.
        expected: usize,
        /// What the caller supplied, in bytes.
        actual: usize,
    },
    /// The rank index is outside the communicator.
    InvalidRank { rank: usize, size: usize },
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::DeviceSetTooSmall(n) => {
                write!(f, "collective needs at least 2 devices, got {n}")
            }
            CollectiveError::EmptyCollective => write!(f, "collective has zero elements"),
            CollectiveError::MissingReduceOp => {
                write!(
                    f,
                    "reducing collective registered without a reduce operator"
                )
            }
            CollectiveError::InvalidRoot(r) => write!(f, "invalid root rank: {r:?}"),
            CollectiveError::BufferSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer size mismatch: expected {expected} bytes, got {actual}"
                )
            }
            CollectiveError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for collective over {size} devices"
                )
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_mention_the_problem() {
        assert!(CollectiveError::DeviceSetTooSmall(1)
            .to_string()
            .contains("2 devices"));
        assert!(CollectiveError::EmptyCollective
            .to_string()
            .contains("zero"));
        assert!(CollectiveError::MissingReduceOp
            .to_string()
            .contains("reduce"));
        assert!(CollectiveError::InvalidRoot(None)
            .to_string()
            .contains("root"));
        assert!(CollectiveError::BufferSizeMismatch {
            expected: 4,
            actual: 2
        }
        .to_string()
        .contains("expected 4"));
        assert!(CollectiveError::InvalidRank { rank: 8, size: 4 }
            .to_string()
            .contains("rank 8"));
    }
}
