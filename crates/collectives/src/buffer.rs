//! Local send/recv buffers shared between the application thread and the
//! daemon kernel.
//!
//! In the real system these are device-memory pointers; here they are
//! reference-counted byte buffers. The invoker keeps a handle, the daemon
//! kernel reads the send buffer and writes the recv buffer, and the completion
//! callback tells the invoker when the recv buffer holds the result.

use std::sync::Arc;

use parking_lot::RwLock;

/// A shared, growable byte buffer standing in for a device-memory allocation.
#[derive(Debug, Clone)]
pub struct DeviceBuffer {
    inner: Arc<RwLock<Vec<u8>>>,
}

impl DeviceBuffer {
    /// A zero-filled buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        DeviceBuffer {
            inner: Arc::new(RwLock::new(vec![0u8; len])),
        }
    }

    /// A buffer initialised from raw bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        DeviceBuffer {
            inner: Arc::new(RwLock::new(bytes)),
        }
    }

    /// A buffer initialised from a slice of `f32` values (little-endian).
    pub fn from_f32(values: &[f32]) -> Self {
        DeviceBuffer::from_bytes(values.iter().flat_map(|v| v.to_le_bytes()).collect())
    }

    /// A buffer initialised from a slice of `i32` values (little-endian).
    pub fn from_i32(values: &[i32]) -> Self {
        DeviceBuffer::from_bytes(values.iter().flat_map(|v| v.to_le_bytes()).collect())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the buffer has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the whole contents.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.read().clone()
    }

    /// Interpret the contents as `f32` values.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        self.inner
            .read()
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect()
    }

    /// Interpret the contents as `i32` values.
    pub fn to_i32_vec(&self) -> Vec<i32> {
        self.inner
            .read()
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect()
    }

    /// Copy of a byte range.
    pub fn read_range(&self, offset: usize, len: usize) -> Vec<u8> {
        self.inner.read()[offset..offset + len].to_vec()
    }

    /// Overwrite a byte range.
    pub fn write_range(&self, offset: usize, data: &[u8]) {
        self.inner.write()[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Overwrite the whole buffer (resizing it).
    pub fn replace(&self, data: Vec<u8>) {
        *self.inner.write() = data;
    }

    /// Run `f` with read access to the contents.
    pub fn with_read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.inner.read())
    }

    /// Run `f` with write access to the contents.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Whether two handles refer to the same underlying allocation.
    pub fn same_allocation(&self, other: &DeviceBuffer) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_buffer_has_requested_length() {
        let b = DeviceBuffer::zeroed(16);
        assert_eq!(b.len(), 16);
        assert!(!b.is_empty());
        assert_eq!(b.to_vec(), vec![0u8; 16]);
        assert!(DeviceBuffer::zeroed(0).is_empty());
    }

    #[test]
    fn f32_round_trip() {
        let values = vec![1.5f32, -2.0, 3.25];
        let b = DeviceBuffer::from_f32(&values);
        assert_eq!(b.to_f32_vec(), values);
        assert_eq!(b.len(), 12);
    }

    #[test]
    fn i32_round_trip() {
        let values = vec![1i32, -7, 1 << 20];
        let b = DeviceBuffer::from_i32(&values);
        assert_eq!(b.to_i32_vec(), values);
    }

    #[test]
    fn range_read_write() {
        let b = DeviceBuffer::zeroed(8);
        b.write_range(2, &[9, 9, 9]);
        assert_eq!(b.read_range(1, 5), vec![0, 9, 9, 9, 0]);
    }

    #[test]
    fn clones_share_the_allocation() {
        let a = DeviceBuffer::zeroed(4);
        let b = a.clone();
        b.write_range(0, &[1, 2, 3, 4]);
        assert_eq!(a.to_vec(), vec![1, 2, 3, 4]);
        assert!(a.same_allocation(&b));
        assert!(!a.same_allocation(&DeviceBuffer::zeroed(4)));
    }

    #[test]
    fn replace_resizes() {
        let b = DeviceBuffer::zeroed(2);
        b.replace(vec![7; 10]);
        assert_eq!(b.len(), 10);
    }

    #[test]
    fn with_read_and_write_closures() {
        let b = DeviceBuffer::from_f32(&[1.0, 2.0]);
        let sum: f32 = b.with_read(|bytes| {
            bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .sum()
        });
        assert_eq!(sum, 3.0);
        b.with_write(|v| v.truncate(4));
        assert_eq!(b.len(), 4);
    }
}
