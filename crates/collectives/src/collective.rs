//! Collective kinds and descriptors.

use gpu_sim::GpuId;
use serde::{Deserialize, Serialize};

use crate::datatype::DataType;
use crate::plan::AlgorithmKind;
use crate::redop::ReduceOp;
use crate::CollectiveError;

/// The five common GPU collectives the paper targets (Sec. 4.1), plus the
/// dense-mesh operations the peer-addressed transport enables: all-to-all
/// (the backbone of MoE expert parallelism) and plain point-to-point
/// send/recv.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Every rank contributes `count` elements; every rank receives the
    /// element-wise reduction.
    AllReduce,
    /// Every rank contributes `count` elements; every rank receives the
    /// concatenation of all contributions (`count * n` elements).
    AllGather,
    /// Every rank contributes `count * n` elements; rank `r` receives the
    /// reduction of everyone's slice `r` (`count` elements).
    ReduceScatter,
    /// Every rank contributes `count` elements; the root receives the reduction.
    Reduce,
    /// The root contributes `count` elements; every rank receives a copy.
    Broadcast,
    /// Every rank contributes `count * n` elements, slice `j` destined for
    /// rank `j`; every rank receives `count * n` elements, slice `i` coming
    /// from rank `i`. Uses the full dense `(src, dst)` pair space of the
    /// connector mesh.
    AllToAll,
    /// Point-to-point transfer: rank 0 (`devices[0]`) sends `count` elements,
    /// rank 1 (`devices[1]`) receives them. Always exactly two devices.
    SendRecv,
}

impl CollectiveKind {
    /// Whether this collective performs a reduction (and therefore needs an operator).
    pub fn is_reducing(&self) -> bool {
        matches!(
            self,
            CollectiveKind::AllReduce | CollectiveKind::ReduceScatter | CollectiveKind::Reduce
        )
    }

    /// Whether this collective is rooted.
    pub fn is_rooted(&self) -> bool {
        matches!(self, CollectiveKind::Reduce | CollectiveKind::Broadcast)
    }

    /// Whether this collective is a point-to-point operation over exactly two
    /// ranks with asymmetric roles (sender and receiver).
    pub fn is_point_to_point(&self) -> bool {
        matches!(self, CollectiveKind::SendRecv)
    }

    /// All collective kinds.
    pub const ALL: [CollectiveKind; 7] = [
        CollectiveKind::AllReduce,
        CollectiveKind::AllGather,
        CollectiveKind::ReduceScatter,
        CollectiveKind::Reduce,
        CollectiveKind::Broadcast,
        CollectiveKind::AllToAll,
        CollectiveKind::SendRecv,
    ];
}

impl std::fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CollectiveKind::AllReduce => "all-reduce",
            CollectiveKind::AllGather => "all-gather",
            CollectiveKind::ReduceScatter => "reduce-scatter",
            CollectiveKind::Reduce => "reduce",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::AllToAll => "all-to-all",
            CollectiveKind::SendRecv => "send-recv",
        };
        write!(f, "{s}")
    }
}

/// Static description of a collective, fixed at registration time
/// (`dfcclRegister*` in Listing 1).
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveDescriptor {
    /// Which collective.
    pub kind: CollectiveKind,
    /// Element count, with the per-kind meaning documented on [`CollectiveKind`].
    pub count: usize,
    /// Element type.
    pub dtype: DataType,
    /// Reduction operator (required for reducing collectives).
    pub op: Option<ReduceOp>,
    /// Root rank (required for rooted collectives).
    pub root: Option<usize>,
    /// Participating GPUs in rank order.
    pub devices: Vec<GpuId>,
    /// User-specified scheduling priority; higher runs earlier under the
    /// priority-based ordering policy. `0` means "no particular priority".
    pub priority: i32,
    /// Per-collective algorithm override. `None` lets the selector pick from
    /// payload size and topology; `Some` is honoured strictly (an unsupported
    /// choice fails registration).
    pub algorithm: Option<AlgorithmKind>,
    /// Per-collective channel-count override: stripe this collective across
    /// `K` parallel connectors per `(src, dst)` edge. `None` uses the
    /// runtime-wide setting (`DfcclConfig::channels`).
    pub channels: Option<usize>,
    /// Opt this collective out of graph-capture fusion: even when it is a
    /// small all-reduce recorded between fusable neighbours, the fusion pass
    /// leaves it as its own node (e.g. a gradient bucket the application
    /// inspects between iterations).
    pub no_fuse: bool,
}

impl CollectiveDescriptor {
    /// Convenience constructor for an all-reduce.
    pub fn all_reduce(count: usize, dtype: DataType, op: ReduceOp, devices: Vec<GpuId>) -> Self {
        CollectiveDescriptor {
            kind: CollectiveKind::AllReduce,
            count,
            dtype,
            op: Some(op),
            root: None,
            devices,
            priority: 0,
            algorithm: None,
            channels: None,
            no_fuse: false,
        }
    }

    /// Convenience constructor for an all-gather.
    pub fn all_gather(count: usize, dtype: DataType, devices: Vec<GpuId>) -> Self {
        CollectiveDescriptor {
            kind: CollectiveKind::AllGather,
            count,
            dtype,
            op: None,
            root: None,
            devices,
            priority: 0,
            algorithm: None,
            channels: None,
            no_fuse: false,
        }
    }

    /// Convenience constructor for a reduce-scatter.
    pub fn reduce_scatter(
        count: usize,
        dtype: DataType,
        op: ReduceOp,
        devices: Vec<GpuId>,
    ) -> Self {
        CollectiveDescriptor {
            kind: CollectiveKind::ReduceScatter,
            count,
            dtype,
            op: Some(op),
            root: None,
            devices,
            priority: 0,
            algorithm: None,
            channels: None,
            no_fuse: false,
        }
    }

    /// Convenience constructor for a rooted reduce.
    pub fn reduce(
        count: usize,
        dtype: DataType,
        op: ReduceOp,
        root: usize,
        devices: Vec<GpuId>,
    ) -> Self {
        CollectiveDescriptor {
            kind: CollectiveKind::Reduce,
            count,
            dtype,
            op: Some(op),
            root: Some(root),
            devices,
            priority: 0,
            algorithm: None,
            channels: None,
            no_fuse: false,
        }
    }

    /// Convenience constructor for a broadcast.
    pub fn broadcast(count: usize, dtype: DataType, root: usize, devices: Vec<GpuId>) -> Self {
        CollectiveDescriptor {
            kind: CollectiveKind::Broadcast,
            count,
            dtype,
            op: None,
            root: Some(root),
            devices,
            priority: 0,
            algorithm: None,
            channels: None,
            no_fuse: false,
        }
    }

    /// Convenience constructor for an all-to-all. `count` is the number of
    /// elements each rank sends to (and receives from) each peer, so the send
    /// and recv buffers both hold `count * n` elements.
    pub fn all_to_all(count: usize, dtype: DataType, devices: Vec<GpuId>) -> Self {
        CollectiveDescriptor {
            kind: CollectiveKind::AllToAll,
            count,
            dtype,
            op: None,
            root: None,
            devices,
            priority: 0,
            algorithm: None,
            channels: None,
            no_fuse: false,
        }
    }

    /// Convenience constructor for a point-to-point transfer: `src` sends
    /// `count` elements to `dst`.
    pub fn send_recv(count: usize, dtype: DataType, src: GpuId, dst: GpuId) -> Self {
        CollectiveDescriptor {
            kind: CollectiveKind::SendRecv,
            count,
            dtype,
            op: None,
            root: None,
            devices: vec![src, dst],
            priority: 0,
            algorithm: None,
            channels: None,
            no_fuse: false,
        }
    }

    /// Set the scheduling priority.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Force a specific collective algorithm for this collective.
    pub fn with_algorithm(mut self, algorithm: AlgorithmKind) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Stripe this collective across `channels` parallel connectors per
    /// `(src, dst)` edge, overriding the runtime-wide setting.
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = Some(channels);
        self
    }

    /// Opt this collective out of graph-capture fusion.
    pub fn with_no_fuse(mut self) -> Self {
        self.no_fuse = true;
        self
    }

    /// Number of participating ranks.
    pub fn num_ranks(&self) -> usize {
        self.devices.len()
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), CollectiveError> {
        if self.devices.len() < 2 {
            return Err(CollectiveError::DeviceSetTooSmall(self.devices.len()));
        }
        // A repeated GpuId corrupts rank addressing: `rank_of` resolves both
        // occurrences to the first, and any plan over the set schedules
        // self-edges. This also covers SendRecv with src == dst.
        let mut seen = std::collections::BTreeSet::new();
        for &d in &self.devices {
            if !seen.insert(d) {
                return Err(CollectiveError::DuplicateDevice(d));
            }
        }
        if self.count == 0 {
            return Err(CollectiveError::EmptyCollective);
        }
        if self.channels == Some(0) {
            return Err(CollectiveError::InvalidChannelCount(0));
        }
        if self.kind.is_reducing() && self.op.is_none() {
            return Err(CollectiveError::MissingReduceOp);
        }
        if self.kind.is_rooted() {
            match self.root {
                Some(r) if r < self.devices.len() => {}
                other => return Err(CollectiveError::InvalidRoot(other)),
            }
        }
        if self.kind.is_point_to_point() && self.devices.len() != 2 {
            return Err(CollectiveError::InvalidPointToPoint(self.devices.len()));
        }
        Ok(())
    }

    /// Required size of the send buffer for `rank`, in elements.
    pub fn send_elems(&self, rank: usize) -> usize {
        match self.kind {
            CollectiveKind::AllReduce
            | CollectiveKind::AllGather
            | CollectiveKind::Reduce
            | CollectiveKind::Broadcast => self.count,
            CollectiveKind::ReduceScatter | CollectiveKind::AllToAll => {
                self.count * self.num_ranks()
            }
            CollectiveKind::SendRecv => {
                if rank == 0 {
                    self.count
                } else {
                    0
                }
            }
        }
    }

    /// Required size of the recv buffer for `rank`, in elements.
    pub fn recv_elems(&self, rank: usize) -> usize {
        match self.kind {
            CollectiveKind::AllReduce | CollectiveKind::Broadcast => self.count,
            CollectiveKind::AllGather | CollectiveKind::AllToAll => self.count * self.num_ranks(),
            CollectiveKind::ReduceScatter => self.count,
            CollectiveKind::Reduce => {
                if Some(rank) == self.root {
                    self.count
                } else {
                    0
                }
            }
            CollectiveKind::SendRecv => {
                if rank == 1 {
                    self.count
                } else {
                    0
                }
            }
        }
    }

    /// Required size of the send buffer in bytes.
    pub fn send_bytes(&self, rank: usize) -> usize {
        self.send_elems(rank) * self.dtype.size_bytes()
    }

    /// Required size of the recv buffer in bytes.
    pub fn recv_bytes(&self, rank: usize) -> usize {
        self.recv_elems(rank) * self.dtype.size_bytes()
    }

    /// Total bytes a rank moves over the wire (approximate; ring algorithm).
    /// Useful for the algorithm-bandwidth computation in the benchmarks.
    pub fn wire_bytes_per_rank(&self) -> usize {
        let n = self.num_ranks();
        let elem = self.dtype.size_bytes();
        match self.kind {
            CollectiveKind::AllReduce => 2 * (n - 1) * (self.count / n.max(1)) * elem,
            CollectiveKind::AllGather
            | CollectiveKind::ReduceScatter
            | CollectiveKind::AllToAll => (n - 1) * self.count * elem,
            CollectiveKind::Reduce | CollectiveKind::Broadcast | CollectiveKind::SendRecv => {
                self.count * elem
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    #[test]
    fn kind_properties() {
        assert!(CollectiveKind::AllReduce.is_reducing());
        assert!(!CollectiveKind::AllGather.is_reducing());
        assert!(CollectiveKind::Reduce.is_rooted());
        assert!(CollectiveKind::Broadcast.is_rooted());
        assert!(!CollectiveKind::AllReduce.is_rooted());
        assert!(!CollectiveKind::AllToAll.is_reducing());
        assert!(!CollectiveKind::AllToAll.is_rooted());
        assert!(CollectiveKind::SendRecv.is_point_to_point());
        assert!(!CollectiveKind::AllToAll.is_point_to_point());
        assert_eq!(CollectiveKind::ALL.len(), 7);
    }

    #[test]
    fn validate_catches_problems() {
        let mut d = CollectiveDescriptor::all_reduce(8, DataType::F32, ReduceOp::Sum, gpus(1));
        assert!(matches!(
            d.validate(),
            Err(CollectiveError::DeviceSetTooSmall(1))
        ));
        d.devices = gpus(4);
        d.count = 0;
        assert!(matches!(
            d.validate(),
            Err(CollectiveError::EmptyCollective)
        ));
        d.count = 8;
        d.op = None;
        assert!(matches!(
            d.validate(),
            Err(CollectiveError::MissingReduceOp)
        ));
        d.op = Some(ReduceOp::Sum);
        assert!(d.validate().is_ok());

        let bad_root = CollectiveDescriptor::broadcast(8, DataType::F32, 9, gpus(4));
        assert!(matches!(
            bad_root.validate(),
            Err(CollectiveError::InvalidRoot(Some(9)))
        ));
        let good_root = CollectiveDescriptor::reduce(8, DataType::F32, ReduceOp::Sum, 3, gpus(4));
        assert!(good_root.validate().is_ok());
    }

    #[test]
    fn buffer_sizes_follow_collective_semantics() {
        let n = 4;
        let ar = CollectiveDescriptor::all_reduce(100, DataType::F32, ReduceOp::Sum, gpus(n));
        assert_eq!(ar.send_elems(0), 100);
        assert_eq!(ar.recv_elems(0), 100);

        let ag = CollectiveDescriptor::all_gather(100, DataType::F32, gpus(n));
        assert_eq!(ag.send_elems(1), 100);
        assert_eq!(ag.recv_elems(1), 400);

        let rs = CollectiveDescriptor::reduce_scatter(100, DataType::F32, ReduceOp::Sum, gpus(n));
        assert_eq!(rs.send_elems(2), 400);
        assert_eq!(rs.recv_elems(2), 100);

        let red = CollectiveDescriptor::reduce(100, DataType::F64, ReduceOp::Max, 1, gpus(n));
        assert_eq!(red.recv_elems(1), 100);
        assert_eq!(red.recv_elems(0), 0);
        assert_eq!(red.send_bytes(0), 800);

        let bc = CollectiveDescriptor::broadcast(100, DataType::U8, 0, gpus(n));
        assert_eq!(bc.send_bytes(0), 100);
        assert_eq!(bc.recv_bytes(3), 100);

        // All-to-all: both buffers hold n slices of `count` elements.
        let a2a = CollectiveDescriptor::all_to_all(100, DataType::F32, gpus(n));
        assert_eq!(a2a.send_elems(0), 400);
        assert_eq!(a2a.recv_elems(3), 400);

        // Point-to-point: only the sender reads, only the receiver writes.
        let p2p = CollectiveDescriptor::send_recv(100, DataType::F32, GpuId(0), GpuId(1));
        assert_eq!(p2p.send_elems(0), 100);
        assert_eq!(p2p.send_elems(1), 0);
        assert_eq!(p2p.recv_elems(0), 0);
        assert_eq!(p2p.recv_elems(1), 100);
    }

    #[test]
    fn point_to_point_validation_needs_two_distinct_devices() {
        let good = CollectiveDescriptor::send_recv(8, DataType::F32, GpuId(0), GpuId(3));
        assert!(good.validate().is_ok());
        // src == dst is a duplicated device, caught by the duplicate check.
        let same = CollectiveDescriptor::send_recv(8, DataType::F32, GpuId(2), GpuId(2));
        assert!(matches!(
            same.validate(),
            Err(CollectiveError::DuplicateDevice(GpuId(2)))
        ));
        let mut three = CollectiveDescriptor::send_recv(8, DataType::F32, GpuId(0), GpuId(1));
        three.devices.push(GpuId(2));
        assert!(matches!(
            three.validate(),
            Err(CollectiveError::InvalidPointToPoint(3))
        ));
    }

    #[test]
    fn duplicate_devices_are_rejected_for_every_kind() {
        // A duplicated rank would build a plan with self-edges and corrupt
        // rank addressing (`rank_of` resolves both occurrences to the first),
        // so registration must refuse it outright — for every collective
        // kind, wherever the duplicate sits in the device set.
        let dup = vec![GpuId(0), GpuId(1), GpuId(2), GpuId(1)];
        for kind in CollectiveKind::ALL {
            let desc = match kind {
                CollectiveKind::AllReduce => {
                    CollectiveDescriptor::all_reduce(8, DataType::F32, ReduceOp::Sum, dup.clone())
                }
                CollectiveKind::AllGather => {
                    CollectiveDescriptor::all_gather(8, DataType::F32, dup.clone())
                }
                CollectiveKind::ReduceScatter => CollectiveDescriptor::reduce_scatter(
                    8,
                    DataType::F32,
                    ReduceOp::Sum,
                    dup.clone(),
                ),
                CollectiveKind::Reduce => {
                    CollectiveDescriptor::reduce(8, DataType::F32, ReduceOp::Sum, 0, dup.clone())
                }
                CollectiveKind::Broadcast => {
                    CollectiveDescriptor::broadcast(8, DataType::F32, 0, dup.clone())
                }
                CollectiveKind::AllToAll => {
                    CollectiveDescriptor::all_to_all(8, DataType::F32, dup.clone())
                }
                CollectiveKind::SendRecv => {
                    CollectiveDescriptor::send_recv(8, DataType::F32, GpuId(3), GpuId(3))
                }
            };
            match desc.validate() {
                Err(CollectiveError::DuplicateDevice(d)) => {
                    let expected = if kind == CollectiveKind::SendRecv {
                        GpuId(3)
                    } else {
                        GpuId(1)
                    };
                    assert_eq!(d, expected, "{kind}");
                }
                other => panic!("{kind}: expected DuplicateDevice, got {other:?}"),
            }
        }
        // An adjacent duplicate at the front is caught too.
        let desc = CollectiveDescriptor::all_gather(8, DataType::F32, vec![GpuId(5), GpuId(5)]);
        assert!(matches!(
            desc.validate(),
            Err(CollectiveError::DuplicateDevice(GpuId(5)))
        ));
    }

    #[test]
    fn channel_overrides_are_validated_and_carried() {
        let d = CollectiveDescriptor::all_gather(4, DataType::F32, gpus(2));
        assert_eq!(d.channels, None);
        let d = d.with_channels(4);
        assert_eq!(d.channels, Some(4));
        assert!(d.validate().is_ok());
        let zero = CollectiveDescriptor::all_gather(4, DataType::F32, gpus(2)).with_channels(0);
        assert!(matches!(
            zero.validate(),
            Err(CollectiveError::InvalidChannelCount(0))
        ));
    }

    #[test]
    fn wire_bytes_reflect_ring_volume() {
        let n = 8;
        let ar = CollectiveDescriptor::all_reduce(1024, DataType::F32, ReduceOp::Sum, gpus(n));
        // 2*(n-1)/n of the buffer, in bytes.
        assert_eq!(ar.wire_bytes_per_rank(), 2 * 7 * 128 * 4);
        let bc = CollectiveDescriptor::broadcast(1024, DataType::F32, 0, gpus(n));
        assert_eq!(bc.wire_bytes_per_rank(), 4096);
    }

    #[test]
    fn priority_builder() {
        let d = CollectiveDescriptor::all_gather(4, DataType::F32, gpus(2)).with_priority(7);
        assert_eq!(d.priority, 7);
    }

    #[test]
    fn no_fuse_builder() {
        let d = CollectiveDescriptor::all_reduce(4, DataType::F32, ReduceOp::Sum, gpus(2));
        assert!(!d.no_fuse);
        assert!(d.with_no_fuse().no_fuse);
    }
}
