//! Primitives: fusions of the basic `send`, `recv`, `reduce`, `copy` actions.
//!
//! Every common collective is a per-rank sequence of these primitives
//! (Sec. 4.1). A primitive that contains a `send` action needs a free slot in
//! the connector towards its send peer; one that contains a `recv` action
//! needs a chunk available in the connector from its recv peer. Those two
//! conditions are what a primitive busy-waits on — indefinitely in NCCL, up
//! to a spin threshold in DFCCL.
//!
//! Peers are explicit: each step names the rank it sends to and the rank it
//! receives from, so the same primitive vocabulary drives ring, tree and
//! hierarchical schedules over a peer-addressed connector mesh.

use serde::{Deserialize, Serialize};

use crate::chunk::ElemRange;
use dfccl_transport::ChannelId;

/// The fused primitive kinds shared by every collective algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimitiveKind {
    /// Read a chunk from the local source buffer and publish it to the send peer.
    Send,
    /// Consume a chunk from the recv peer and write it to the recv buffer.
    Recv,
    /// Copy a chunk from the local source buffer to the local recv buffer (no transport).
    Copy,
    /// Consume a chunk, write it to the recv buffer, and forward it to the send peer.
    RecvCopySend,
    /// Consume a chunk, reduce it with the local source buffer, and forward the result.
    RecvReduceSend,
    /// Consume a chunk, reduce it with the local source buffer, and write the result
    /// to the recv buffer.
    RecvReduceCopy,
    /// Consume a chunk, reduce it with the local source buffer, write the result to
    /// the recv buffer, and forward it.
    RecvReduceCopySend,
}

impl PrimitiveKind {
    /// Whether the primitive publishes a chunk towards its send peer.
    pub fn has_send(&self) -> bool {
        matches!(
            self,
            PrimitiveKind::Send
                | PrimitiveKind::RecvCopySend
                | PrimitiveKind::RecvReduceSend
                | PrimitiveKind::RecvReduceCopySend
        )
    }

    /// Whether the primitive consumes a chunk from its recv peer.
    pub fn has_recv(&self) -> bool {
        matches!(
            self,
            PrimitiveKind::Recv
                | PrimitiveKind::RecvCopySend
                | PrimitiveKind::RecvReduceSend
                | PrimitiveKind::RecvReduceCopy
                | PrimitiveKind::RecvReduceCopySend
        )
    }

    /// Whether the primitive reduces incoming data with the local source buffer.
    pub fn has_reduce(&self) -> bool {
        matches!(
            self,
            PrimitiveKind::RecvReduceSend
                | PrimitiveKind::RecvReduceCopy
                | PrimitiveKind::RecvReduceCopySend
        )
    }

    /// Whether the primitive writes to the local recv buffer.
    pub fn has_copy(&self) -> bool {
        matches!(
            self,
            PrimitiveKind::Recv
                | PrimitiveKind::Copy
                | PrimitiveKind::RecvCopySend
                | PrimitiveKind::RecvReduceCopy
                | PrimitiveKind::RecvReduceCopySend
        )
    }

    /// All primitive kinds.
    pub const ALL: [PrimitiveKind; 7] = [
        PrimitiveKind::Send,
        PrimitiveKind::Recv,
        PrimitiveKind::Copy,
        PrimitiveKind::RecvCopySend,
        PrimitiveKind::RecvReduceSend,
        PrimitiveKind::RecvReduceCopy,
        PrimitiveKind::RecvReduceCopySend,
    ];
}

/// Which local buffer a primitive reads its local operand (`src`) from.
///
/// Ring schedules only ever read the original contribution from the send
/// buffer. Tree and hierarchical schedules accumulate partial results in the
/// recv buffer across multiple reducing steps, and later forward those
/// partials — which requires reading `src` back out of the recv buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SrcBuf {
    /// The rank's send buffer (its original input).
    Send,
    /// The rank's recv buffer (accumulated partials / final results).
    Recv,
}

/// One primitive of a rank's plan, fully describing what data it touches and
/// which peers it talks to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrimitiveStep {
    /// What to do.
    pub kind: PrimitiveKind,
    /// Element range read as the local operand (`None` when the primitive
    /// does not read local data).
    pub src: Option<ElemRange>,
    /// Which local buffer `src` refers to.
    pub src_buf: SrcBuf,
    /// Element range written in the local recv buffer (`None` when the
    /// primitive does not produce local output).
    pub dst: Option<ElemRange>,
    /// Rank this primitive sends to (`Some` iff the kind has a send half).
    pub send_to: Option<usize>,
    /// Rank this primitive receives from (`Some` iff the kind has a recv half).
    pub recv_from: Option<usize>,
    /// Index of the chunk within its macro step (used for message matching).
    pub chunk_index: u32,
    /// Macro-step index this primitive belongs to (monotone in the algorithm's
    /// logical order; also the pipelining sort key together with the chunk).
    pub step: u32,
    /// Which of the K parallel connectors per `(src, dst)` edge this
    /// primitive's transfer rides on. Builders assign channels round-robin by
    /// chunk index (`chunk_index % K`), so matched send/recv pairs — which
    /// share the chunk index — always agree on the channel, and each
    /// channel's subsequence stays independently chunk-major.
    pub channel: ChannelId,
}

impl PrimitiveStep {
    /// Number of elements this primitive moves.
    pub fn elems(&self) -> usize {
        self.src
            .map(|r| r.len)
            .or_else(|| self.dst.map(|r| r.len))
            .unwrap_or(0)
    }

    /// Whether the peer fields are consistent with the kind and in range for
    /// a communicator of `size` ranks.
    pub fn peers_consistent(&self, size: usize) -> bool {
        let send_ok = match (self.kind.has_send(), self.send_to) {
            (true, Some(p)) => p < size,
            (false, None) => true,
            _ => false,
        };
        let recv_ok = match (self.kind.has_recv(), self.recv_from) {
            (true, Some(p)) => p < size,
            (false, None) => true,
            _ => false,
        };
        send_ok && recv_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_recv_flags_are_consistent() {
        use PrimitiveKind::*;
        assert!(Send.has_send() && !Send.has_recv() && !Send.has_reduce() && !Send.has_copy());
        assert!(!Recv.has_send() && Recv.has_recv() && Recv.has_copy());
        assert!(!Copy.has_send() && !Copy.has_recv() && Copy.has_copy());
        assert!(RecvCopySend.has_send() && RecvCopySend.has_recv() && RecvCopySend.has_copy());
        assert!(RecvReduceSend.has_reduce() && !RecvReduceSend.has_copy());
        assert!(
            RecvReduceCopy.has_reduce() && RecvReduceCopy.has_copy() && !RecvReduceCopy.has_send()
        );
        assert!(RecvReduceCopySend.has_send() && RecvReduceCopySend.has_copy());
    }

    #[test]
    fn every_primitive_sends_or_receives_or_copies() {
        for k in PrimitiveKind::ALL {
            assert!(k.has_send() || k.has_recv() || k.has_copy());
        }
    }

    #[test]
    fn step_elems_prefers_src() {
        let s = PrimitiveStep {
            kind: PrimitiveKind::Send,
            src: Some(ElemRange::new(0, 10)),
            src_buf: SrcBuf::Send,
            dst: None,
            send_to: Some(1),
            recv_from: None,
            chunk_index: 0,
            step: 0,
            channel: ChannelId(0),
        };
        assert_eq!(s.elems(), 10);
        let r = PrimitiveStep {
            kind: PrimitiveKind::Recv,
            src: None,
            src_buf: SrcBuf::Send,
            dst: Some(ElemRange::new(4, 6)),
            send_to: None,
            recv_from: Some(0),
            chunk_index: 0,
            step: 1,
            channel: ChannelId(0),
        };
        assert_eq!(r.elems(), 6);
    }

    #[test]
    fn peer_consistency_matches_kind() {
        let mut s = PrimitiveStep {
            kind: PrimitiveKind::Send,
            src: Some(ElemRange::new(0, 1)),
            src_buf: SrcBuf::Send,
            dst: None,
            send_to: Some(1),
            recv_from: None,
            chunk_index: 0,
            step: 0,
            channel: ChannelId(0),
        };
        assert!(s.peers_consistent(2));
        assert!(!s.peers_consistent(1), "peer out of range");
        s.send_to = None;
        assert!(!s.peers_consistent(2), "send kind without a send peer");
        s.kind = PrimitiveKind::Copy;
        assert!(s.peers_consistent(2));
        s.recv_from = Some(0);
        assert!(!s.peers_consistent(2), "copy must not name a recv peer");
    }
}
