//! Primitives: fusions of the basic `send`, `recv`, `reduce`, `copy` actions.
//!
//! Every common collective is a per-rank sequence of these primitives
//! (Sec. 4.1). A primitive that contains a `send` action needs a free slot in
//! the rank's send connector; one that contains a `recv` action needs a chunk
//! available in the recv connector. Those two conditions are what a primitive
//! busy-waits on — indefinitely in NCCL, up to a spin threshold in DFCCL.

use serde::{Deserialize, Serialize};

use crate::chunk::ElemRange;

/// The fused primitive kinds used by the ring algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimitiveKind {
    /// Read a chunk from the local send buffer and publish it to the send connector.
    Send,
    /// Consume a chunk from the recv connector and write it to the recv buffer.
    Recv,
    /// Copy a chunk from the local send buffer to the local recv buffer (no transport).
    Copy,
    /// Consume a chunk, write it to the recv buffer, and forward it to the next rank.
    RecvCopySend,
    /// Consume a chunk, reduce it with the local send buffer, and forward the result.
    RecvReduceSend,
    /// Consume a chunk, reduce it with the local send buffer, and write the result
    /// to the recv buffer.
    RecvReduceCopy,
    /// Consume a chunk, reduce it with the local send buffer, write the result to
    /// the recv buffer, and forward it.
    RecvReduceCopySend,
}

impl PrimitiveKind {
    /// Whether the primitive publishes a chunk to the send connector.
    pub fn has_send(&self) -> bool {
        matches!(
            self,
            PrimitiveKind::Send
                | PrimitiveKind::RecvCopySend
                | PrimitiveKind::RecvReduceSend
                | PrimitiveKind::RecvReduceCopySend
        )
    }

    /// Whether the primitive consumes a chunk from the recv connector.
    pub fn has_recv(&self) -> bool {
        matches!(
            self,
            PrimitiveKind::Recv
                | PrimitiveKind::RecvCopySend
                | PrimitiveKind::RecvReduceSend
                | PrimitiveKind::RecvReduceCopy
                | PrimitiveKind::RecvReduceCopySend
        )
    }

    /// Whether the primitive reduces incoming data with the local send buffer.
    pub fn has_reduce(&self) -> bool {
        matches!(
            self,
            PrimitiveKind::RecvReduceSend
                | PrimitiveKind::RecvReduceCopy
                | PrimitiveKind::RecvReduceCopySend
        )
    }

    /// Whether the primitive writes to the local recv buffer.
    pub fn has_copy(&self) -> bool {
        matches!(
            self,
            PrimitiveKind::Recv
                | PrimitiveKind::Copy
                | PrimitiveKind::RecvCopySend
                | PrimitiveKind::RecvReduceCopy
                | PrimitiveKind::RecvReduceCopySend
        )
    }

    /// All primitive kinds.
    pub const ALL: [PrimitiveKind; 7] = [
        PrimitiveKind::Send,
        PrimitiveKind::Recv,
        PrimitiveKind::Copy,
        PrimitiveKind::RecvCopySend,
        PrimitiveKind::RecvReduceSend,
        PrimitiveKind::RecvReduceCopy,
        PrimitiveKind::RecvReduceCopySend,
    ];
}

/// One primitive of a rank's plan, fully describing what data it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrimitiveStep {
    /// What to do.
    pub kind: PrimitiveKind,
    /// Element range read from the local send buffer (`None` when the
    /// primitive does not read local data).
    pub src: Option<ElemRange>,
    /// Element range written in the local recv buffer (`None` when the
    /// primitive does not produce local output).
    pub dst: Option<ElemRange>,
    /// Index of the chunk within its macro step (used for message matching).
    pub chunk_index: u32,
    /// Ring macro-step index this primitive belongs to.
    pub step: u32,
}

impl PrimitiveStep {
    /// Number of elements this primitive moves.
    pub fn elems(&self) -> usize {
        self.src
            .map(|r| r.len)
            .or_else(|| self.dst.map(|r| r.len))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_recv_flags_are_consistent() {
        use PrimitiveKind::*;
        assert!(Send.has_send() && !Send.has_recv() && !Send.has_reduce() && !Send.has_copy());
        assert!(!Recv.has_send() && Recv.has_recv() && Recv.has_copy());
        assert!(!Copy.has_send() && !Copy.has_recv() && Copy.has_copy());
        assert!(RecvCopySend.has_send() && RecvCopySend.has_recv() && RecvCopySend.has_copy());
        assert!(RecvReduceSend.has_reduce() && !RecvReduceSend.has_copy());
        assert!(
            RecvReduceCopy.has_reduce() && RecvReduceCopy.has_copy() && !RecvReduceCopy.has_send()
        );
        assert!(RecvReduceCopySend.has_send() && RecvReduceCopySend.has_copy());
    }

    #[test]
    fn every_primitive_sends_or_receives_or_copies() {
        for k in PrimitiveKind::ALL {
            assert!(k.has_send() || k.has_recv() || k.has_copy());
        }
    }

    #[test]
    fn step_elems_prefers_src() {
        let s = PrimitiveStep {
            kind: PrimitiveKind::Send,
            src: Some(ElemRange::new(0, 10)),
            dst: None,
            chunk_index: 0,
            step: 0,
        };
        assert_eq!(s.elems(), 10);
        let r = PrimitiveStep {
            kind: PrimitiveKind::Recv,
            src: None,
            dst: Some(ElemRange::new(4, 6)),
            chunk_index: 0,
            step: 1,
        };
        assert_eq!(r.elems(), 6);
    }
}
