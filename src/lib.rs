//! # dfccl-repro — umbrella crate
//!
//! Re-exports the workspace crates so the examples and the cross-crate
//! integration tests in `tests/` can use a single dependency. See `README.md`
//! for the project overview and `DESIGN.md` for the architecture and the
//! experiment index.

pub use deadlock_sim;
pub use dfccl;
pub use dfccl_baseline as baseline;
pub use dfccl_collectives as collectives;
pub use dfccl_transport as transport;
pub use dfccl_workloads as workloads;
pub use gpu_sim;

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_are_wired() {
        // A smoke test that the re-exported crates are usable from one place.
        let domain = crate::dfccl::DfcclDomain::flat_for_testing(2);
        assert_eq!(domain.topology().gpu_count(), 2);
        assert_eq!(crate::workloads::DnnModel::resnet50().gradient_buckets, 25);
        assert_eq!(crate::deadlock_sim::table1_rows().len(), 18);
    }
}
