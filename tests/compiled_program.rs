//! The compilation layer's integration contract: compiled per-channel
//! programs execute bit-identically to the interpreted plan IR across every
//! algorithm family × collective kind × rank count × channel count, a
//! stalled lane never blocks a ready one, lane cursors survive preemption
//! storms, and the plan cache serves repeat registrations end to end.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dfccl_collectives::{
    algorithm, execute_ready_instr, instr_ready, run_plan_blocking, run_program_blocking,
    AlgorithmKind, CollectiveDescriptor, CollectiveKind, CompiledProgram, DataType, DeviceBuffer,
    PendingSends, ReduceOp, StepOutcome,
};
use dfccl_transport::{ChannelId, Communicator, CommunicatorId, LinkModel, Topology};
use gpu_sim::GpuId;

fn gpus(n: usize) -> Vec<GpuId> {
    (0..n).map(GpuId).collect()
}

fn descriptor_for(kind: CollectiveKind, count: usize, n: usize) -> CollectiveDescriptor {
    match kind {
        CollectiveKind::AllReduce => {
            CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, gpus(n))
        }
        CollectiveKind::AllGather => {
            CollectiveDescriptor::all_gather(count, DataType::F32, gpus(n))
        }
        CollectiveKind::ReduceScatter => {
            CollectiveDescriptor::reduce_scatter(count, DataType::F32, ReduceOp::Sum, gpus(n))
        }
        CollectiveKind::Reduce => {
            CollectiveDescriptor::reduce(count, DataType::F32, ReduceOp::Sum, n - 1, gpus(n))
        }
        CollectiveKind::Broadcast => {
            CollectiveDescriptor::broadcast(count, DataType::F32, n - 1, gpus(n))
        }
        CollectiveKind::AllToAll => CollectiveDescriptor::all_to_all(count, DataType::F32, gpus(n)),
        CollectiveKind::SendRecv => {
            CollectiveDescriptor::send_recv(count, DataType::F32, GpuId(0), GpuId(1))
        }
    }
}

/// Integer-valued inputs: every reduction association is exact in f32, so
/// results must be bit-identical across execution paths.
fn inputs_for(desc: &CollectiveDescriptor) -> Vec<Vec<f32>> {
    (0..desc.num_ranks())
        .map(|r| {
            (0..desc.send_elems(r))
                .map(|i| ((r * 31 + i * 7) % 101) as f32)
                .collect()
        })
        .collect()
}

/// Run `desc` with `algo`, one thread per rank, either interpreting each
/// rank's plan (`compiled = false`, the oracle) or executing its compiled
/// program lane-wise (`compiled = true`). Connector capacity 1, so any
/// per-lane ordering or pairing mistake wedges immediately.
#[allow(clippy::too_many_arguments)]
fn run_all_ranks(
    desc: &CollectiveDescriptor,
    algo: AlgorithmKind,
    topo: &Topology,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    channels: usize,
    compiled: bool,
) -> Vec<Vec<f32>> {
    let n = desc.num_ranks();
    let topo_arc = Arc::new(topo.clone());
    let comm = Communicator::new(
        CommunicatorId(0),
        desc.devices.clone(),
        &topo_arc,
        &Arc::new(LinkModel::zero_cost()),
        1,
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut joins = Vec::new();
    for (rank, input) in inputs.iter().enumerate() {
        let desc = desc.clone();
        let input = input.clone();
        let plan = algorithm(algo)
            .build_plan_striped(&desc, rank, chunk_elems, channels, topo)
            .unwrap();
        plan.validate(rank, n).unwrap();
        let rank_channels = comm
            .channels(rank, plan.send_edges(), plan.recv_edges())
            .unwrap();
        joins.push(std::thread::spawn(move || {
            let send = DeviceBuffer::from_f32(&input);
            let recv = DeviceBuffer::zeroed(desc.recv_bytes(rank).max(4));
            let done = if compiled {
                let program = CompiledProgram::compile(&plan, desc.dtype);
                let table = program.bind(&rank_channels).unwrap();
                run_program_blocking(7, &program, &table, desc.op, &send, &recv, &|| {
                    Instant::now() > deadline
                })
                .unwrap()
            } else {
                run_plan_blocking(
                    7,
                    &plan.steps,
                    &rank_channels,
                    desc.dtype,
                    desc.op,
                    &send,
                    &recv,
                    &|| Instant::now() > deadline,
                )
                .unwrap()
            };
            assert!(done, "rank {rank} hit the deadlock deadline");
            recv.to_f32_vec()
        }));
    }
    joins.into_iter().map(|j| j.join().unwrap()).collect()
}

/// The multi-node splits of `n` the hierarchical algorithm can run on.
fn hierarchical_splits(n: usize) -> Vec<Topology> {
    (2..=n)
        .filter(|d| n.is_multiple_of(*d))
        .map(|d| Topology::uniform_cluster(d, n / d))
        .collect()
}

#[test]
fn compiled_execution_is_bit_identical_to_interpreted_for_every_family() {
    // The tentpole's property test: every algorithm family × collective kind
    // × rank count 2–8 × channel count K ∈ {1, 2, 3} completes through the
    // compiled per-channel lanes at connector capacity 1 and produces
    // results bit-identical to the interpreted plan execution. The chunk
    // size (3) is far below the per-slice element counts, so every schedule
    // genuinely stripes across all K channels, and capacity 1 means any
    // lane-ordering mistake wedges rather than merely slowing down.
    let count = 17; // odd: uneven slices, partial chunks
    let chunk_elems = 3;
    for n in 2..=8usize {
        let mut jobs: Vec<(CollectiveKind, AlgorithmKind, Topology)> = Vec::new();
        for kind in CollectiveKind::ALL {
            let algo = match kind {
                CollectiveKind::AllToAll | CollectiveKind::SendRecv => AlgorithmKind::Pairwise,
                _ => AlgorithmKind::Ring,
            };
            let ranks = if kind == CollectiveKind::SendRecv {
                2
            } else {
                n
            };
            jobs.push((kind, algo, Topology::flat(ranks)));
        }
        for kind in [CollectiveKind::AllReduce, CollectiveKind::Broadcast] {
            jobs.push((kind, AlgorithmKind::DoubleBinaryTree, Topology::flat(n)));
        }
        for topo in hierarchical_splits(n) {
            jobs.push((CollectiveKind::AllReduce, AlgorithmKind::Hierarchical, topo));
        }
        for (kind, algo, topo) in jobs {
            let ranks = if kind == CollectiveKind::SendRecv {
                2
            } else {
                n
            };
            let desc = descriptor_for(kind, count, ranks);
            let inputs = inputs_for(&desc);
            for k in [1usize, 2, 3] {
                let oracle = run_all_ranks(&desc, algo, &topo, &inputs, chunk_elems, k, false);
                let compiled = run_all_ranks(&desc, algo, &topo, &inputs, chunk_elems, k, true);
                assert_eq!(
                    compiled, oracle,
                    "{algo} {kind} n={n} K={k}: compiled diverges from interpreted"
                );
            }
        }
    }
}

#[test]
fn a_stalled_lane_never_blocks_ready_lanes() {
    // Single-threaded lane scheduling: rank 0's striped sender program over
    // 1-slot connectors, with the peer draining only channels 1 and 2. The
    // channel-0 lane stalls after its first send fills the connector; the
    // other lanes must drain to completion regardless — the head-of-line
    // independence a single global step cursor cannot provide.
    let n = 2;
    let count = 12; // chunk 1 × K=3 → 4 sends per lane
    let desc = descriptor_for(CollectiveKind::SendRecv, count, n);
    let topo = Topology::flat(n);
    let plan = algorithm(AlgorithmKind::Pairwise)
        .build_plan_striped(&desc, 0, 1, 3, &topo)
        .unwrap();
    plan.validate(0, n).unwrap();
    let comm = Communicator::new(
        CommunicatorId(0),
        desc.devices.clone(),
        &Arc::new(topo),
        &Arc::new(LinkModel::zero_cost()),
        1,
    )
    .unwrap();
    let channels0 = comm
        .channels(0, plan.send_edges(), plan.recv_edges())
        .unwrap();
    let program = CompiledProgram::compile(&plan, desc.dtype);
    let table = program.bind(&channels0).unwrap();
    assert_eq!(program.lane_count(), 3, "the sender stripes over 3 lanes");

    let recv_edges: Vec<(usize, ChannelId)> = (0..3).map(|c| (0usize, ChannelId(c))).collect();
    let channels1 = comm.channels(1, &[], &recv_edges).unwrap();

    let send = DeviceBuffer::from_f32(&(0..count).map(|i| i as f32).collect::<Vec<_>>());
    let recv = DeviceBuffer::zeroed(4);
    let mut pending = PendingSends::default();
    let mut cursors = vec![0u32; program.lane_count()];
    for _ in 0..100 {
        for (li, lane) in program.lanes().iter().enumerate() {
            let cur = cursors[li] as usize;
            if cur >= lane.len() {
                continue;
            }
            let idx = lane.instr_ids()[cur];
            if !program.instr_eligible(idx, &cursors)
                || !instr_ready(&program, idx, &table, &pending)
            {
                continue;
            }
            let out =
                execute_ready_instr(7, &program, idx, &table, None, &send, &recv, &mut pending)
                    .unwrap();
            if out == StepOutcome::Completed {
                cursors[li] += 1;
            }
        }
        // The peer drains channels 1 and 2 only; channel 0 stays wedged.
        for c in [1u32, 2] {
            while channels1
                .recv_on(0, ChannelId(c))
                .unwrap()
                .try_recv()
                .is_some()
            {}
        }
    }
    for (li, lane) in program.lanes().iter().enumerate() {
        match lane.channel() {
            ChannelId(0) => assert_eq!(
                cursors[li], 1,
                "the stalled lane sits behind its full 1-slot connector"
            ),
            _ => assert_eq!(
                cursors[li] as usize,
                lane.len(),
                "lane {} must drain despite the stalled channel-0 lane",
                lane.channel()
            ),
        }
    }
}

#[test]
fn preemption_storm_restores_lane_cursors_identically_under_both_dispatches() {
    // The lane-cursor save/restore contract: a 4-poll spin threshold over
    // 1-slot connectors suspends striped collectives mid-flight constantly,
    // so every preemption saves the per-lane cursors (and per-channel staged
    // chunks) and every reschedule resumes them. Running the same seeded
    // workload under compiled and interpreted dispatch must produce
    // identical results, and both configurations must actually preempt.
    use dfccl::{DfcclConfig, DfcclDomain};
    use gpu_sim::GpuSpec;

    let n = 4;
    let count = 60; // chunk 4 → 15 chunks striped over 3 channels
    let inputs: Vec<Vec<f32>> = (0..n)
        .map(|r| {
            (0..count * n)
                .map(|i| ((r * 53 + i * 11) % 251) as f32)
                .collect()
        })
        .collect();
    let mut results: Vec<Vec<Vec<f32>>> = Vec::new();
    for compiled in [true, false] {
        let config = DfcclConfig {
            chunk_elems: 4,
            connector_capacity: 1,
            channels: 3,
            compiled_dispatch: compiled,
            ..DfcclConfig::preemption_stress()
        };
        let domain = DfcclDomain::new(
            Topology::flat(n),
            LinkModel::zero_cost(),
            GpuSpec::rtx_3090(),
            config,
        );
        let ranks: Vec<_> = (0..n)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        for ctx in &ranks {
            ctx.register_all_to_all(1, count, DataType::F32, gpus(n), 0)
                .unwrap();
            ctx.register_all_reduce(2, count * n, DataType::F32, ReduceOp::Sum, gpus(n), 0)
                .unwrap();
        }
        let mut handles = Vec::new();
        let mut recvs = Vec::new();
        for _ in 0..2 {
            for (g, ctx) in ranks.iter().enumerate() {
                for coll in [1u64, 2] {
                    let recv = DeviceBuffer::zeroed(count * n * 4);
                    recvs.push(recv.clone());
                    handles.push(
                        ctx.run_awaitable(coll, DeviceBuffer::from_f32(&inputs[g]), recv)
                            .unwrap(),
                    );
                }
            }
        }
        for h in &handles {
            assert!(
                h.wait_for_timeout(1, Duration::from_secs(60)),
                "storm wedged (compiled = {compiled})"
            );
        }
        let preemptions: u64 = ranks.iter().map(|c| c.stats().preemptions).sum();
        assert!(
            preemptions > 0,
            "the storm must actually preempt mid-plan (compiled = {compiled})"
        );
        for ctx in ranks {
            assert!(ctx.collective_errors().is_empty());
            ctx.destroy();
        }
        results.push(recvs.iter().map(|r| r.to_f32_vec()).collect());
    }
    assert_eq!(
        results[0], results[1],
        "compiled and interpreted dispatch must agree under the storm"
    );
}

#[test]
fn plan_cache_serves_repeat_registrations_through_the_full_stack() {
    use dfccl::DfcclDomain;

    let domain = DfcclDomain::flat_for_testing(2);
    let count = 32;
    let ranks: Vec<_> = (0..2)
        .map(|g| domain.init_rank(GpuId(g)).unwrap())
        .collect();
    // Four registrations of one shape (2 collective ids × 2 ranks): the
    // first builds, the remaining three hit the cache.
    for ctx in &ranks {
        for coll in [1u64, 2] {
            ctx.register_all_reduce(coll, count, DataType::F32, ReduceOp::Sum, gpus(2), 0)
                .unwrap();
        }
    }
    assert_eq!(
        domain.plan_cache().misses(),
        2,
        "one build per rank's shape"
    );
    assert_eq!(domain.plan_cache().hits(), 2, "repeat shapes are served");

    // Cache-served registrations execute correctly end to end.
    for coll in [1u64, 2] {
        let mut handles = Vec::new();
        let mut recvs = Vec::new();
        for (g, ctx) in ranks.iter().enumerate() {
            let send = DeviceBuffer::from_f32(&vec![(g + 1) as f32; count]);
            let recv = DeviceBuffer::zeroed(count * 4);
            recvs.push(recv.clone());
            handles.push(ctx.run_awaitable(coll, send, recv).unwrap());
        }
        for h in &handles {
            assert!(h.wait_for_timeout(1, Duration::from_secs(20)));
        }
        for recv in &recvs {
            assert_eq!(recv.to_f32_vec(), vec![3.0f32; count], "coll {coll}");
        }
    }
    for ctx in ranks {
        assert!(ctx.collective_errors().is_empty());
        ctx.destroy();
    }
}
