//! Cross-crate integration tests: DFCCL vs. the NCCL-like baseline on the
//! paper's deadlock scenarios, correctness of results under heavy preemption,
//! and the deadlock simulator's headline conclusions.

use std::sync::Arc;
use std::time::Duration;

use dfccl_repro::baseline::{wait_all_or_deadlock, NcclDomain};
use dfccl_repro::collectives::{CollectiveDescriptor, DataType, DeviceBuffer, ReduceOp};
use dfccl_repro::deadlock_sim::{
    estimate_deadlock_ratio, DecisionModel, GroupingPolicy, SimConfig,
};
use dfccl_repro::dfccl::{DfcclConfig, DfcclDomain};
use dfccl_repro::gpu_sim::{GpuId, GpuSpec, StreamId};
use dfccl_repro::transport::{LinkModel, Topology};
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn gpu_ids(n: usize) -> Vec<GpuId> {
    (0..n).map(GpuId).collect()
}

/// Four GPUs invoke four all-reduces in four different random orders; DFCCL
/// completes all of them with correct results while the NCCL-like baseline,
/// given the same orders on a single stream, deadlocks.
#[test]
fn disordered_collectives_complete_under_dfccl_and_deadlock_under_baseline() {
    let n = 4;
    let count = 512;
    let n_coll = 4u64;
    let orders: Vec<Vec<u64>> = (0..n)
        .map(|g| {
            let mut order: Vec<u64> = (0..n_coll).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(g as u64 + 100);
            order.shuffle(&mut rng);
            order
        })
        .collect();

    // --- DFCCL ---
    let domain = DfcclDomain::new(
        Topology::flat(n),
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        DfcclConfig::preemption_stress(), // tiny spin thresholds: preempt constantly
    );
    let ranks: Vec<_> = (0..n)
        .map(|g| Arc::new(domain.init_rank(GpuId(g)).unwrap()))
        .collect();
    for rank in &ranks {
        for c in 0..n_coll {
            rank.register_all_reduce(c, count, DataType::F32, ReduceOp::Sum, gpu_ids(n), 0)
                .unwrap();
        }
    }
    let mut joins = Vec::new();
    for (g, rank) in ranks.iter().enumerate() {
        let rank = Arc::clone(rank);
        let order = orders[g].clone();
        joins.push(std::thread::spawn(move || {
            let mut outs = Vec::new();
            let mut handles = Vec::new();
            for &c in &order {
                let send = DeviceBuffer::from_f32(&vec![(g + 1) as f32; count]);
                let recv = DeviceBuffer::zeroed(count * 4);
                outs.push((c, recv.clone()));
                handles.push(rank.run_awaitable(c, send, recv).unwrap());
            }
            for h in handles {
                assert!(h.wait_for_timeout(1, Duration::from_secs(60)));
            }
            outs
        }));
    }
    let expected = vec![(1 + 2 + 3 + 4) as f32; count];
    for j in joins {
        for (c, out) in j.join().unwrap() {
            assert_eq!(out.to_f32_vec(), expected, "collective {c} result wrong");
        }
    }
    let total_preemptions: u64 = ranks.iter().map(|r| r.stats().preemptions).sum();
    assert!(
        total_preemptions > 0,
        "the stress config must exercise preemption"
    );
    for rank in &ranks {
        assert!(rank.collective_errors().is_empty());
        rank.destroy();
    }

    // --- NCCL-like baseline, single stream per GPU ---
    let ndomain = NcclDomain::flat_for_testing(n, 1);
    let nranks: Vec<_> = (0..n)
        .map(|g| Arc::new(ndomain.init_rank(GpuId(g)).unwrap()))
        .collect();
    for rank in &nranks {
        for c in 0..n_coll {
            rank.register(
                c,
                CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, gpu_ids(n)),
            )
            .unwrap();
        }
    }
    let mut handles = Vec::new();
    for (g, rank) in nranks.iter().enumerate() {
        for &c in &orders[g] {
            handles.push(
                rank.launch_collective(
                    c,
                    StreamId(1),
                    DeviceBuffer::from_f32(&vec![1.0; count]),
                    DeviceBuffer::zeroed(count * 4),
                )
                .unwrap(),
            );
        }
    }
    let outcome = wait_all_or_deadlock(&handles, &ndomain.engines(), Duration::from_secs(2));
    assert!(
        outcome.is_deadlock(),
        "disordered single-stream baseline must deadlock"
    );
    ndomain.shutdown();
}

/// Device synchronization interleaved with disordered collectives: DFCCL's
/// voluntary quitting lets the synchronization drain and the work complete.
#[test]
fn device_sync_between_disordered_collectives_completes_under_dfccl() {
    let n = 2;
    let count = 1024;
    let domain = DfcclDomain::flat_for_testing(n);
    let ranks: Vec<_> = (0..n)
        .map(|g| Arc::new(domain.init_rank(GpuId(g)).unwrap()))
        .collect();
    for rank in &ranks {
        for c in 0..2u64 {
            rank.register_all_reduce(c, count, DataType::F32, ReduceOp::Sum, gpu_ids(n), 0)
                .unwrap();
        }
    }
    let mut joins = Vec::new();
    for (g, rank) in ranks.iter().enumerate() {
        let rank = Arc::clone(rank);
        joins.push(std::thread::spawn(move || {
            let order = if g == 0 { [0u64, 1] } else { [1, 0] };
            let first = rank
                .run_awaitable(
                    order[0],
                    DeviceBuffer::from_f32(&vec![1.0; count]),
                    DeviceBuffer::zeroed(count * 4),
                )
                .unwrap();
            assert!(
                rank.device_synchronize(Duration::from_secs(30)),
                "synchronization must drain thanks to voluntary quitting"
            );
            let second = rank
                .run_awaitable(
                    order[1],
                    DeviceBuffer::from_f32(&vec![1.0; count]),
                    DeviceBuffer::zeroed(count * 4),
                )
                .unwrap();
            assert!(first.wait_for_timeout(1, Duration::from_secs(60)));
            assert!(second.wait_for_timeout(1, Duration::from_secs(60)));
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    // The daemons must quit voluntarily at least once to let the syncs drain.
    // The quit is asynchronous (the daemon counts down its idle budget after
    // the last completion), so poll briefly instead of racing it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let quits: u64 = ranks.iter().map(|r| r.stats().voluntary_quits).sum();
        if quits > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no daemon quit voluntarily within 10s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    for rank in &ranks {
        rank.destroy();
    }
}

/// Re-invoking the same registered collective many times reuses its
/// communicator and produces fresh, correct results every time.
#[test]
fn repeated_invocations_of_one_registered_collective_stay_correct() {
    let n = 3;
    let count = 257; // deliberately not a multiple of n
    let domain = DfcclDomain::flat_for_testing(n);
    let ranks: Vec<_> = (0..n)
        .map(|g| Arc::new(domain.init_rank(GpuId(g)).unwrap()))
        .collect();
    for rank in &ranks {
        rank.register_all_reduce(7, count, DataType::F32, ReduceOp::Sum, gpu_ids(n), 0)
            .unwrap();
    }
    for iteration in 0..10 {
        let mut handles = Vec::new();
        let mut outs = Vec::new();
        for (g, rank) in ranks.iter().enumerate() {
            let value = (iteration + g + 1) as f32;
            let recv = DeviceBuffer::zeroed(count * 4);
            outs.push(recv.clone());
            handles.push(
                rank.run_awaitable(7, DeviceBuffer::from_f32(&vec![value; count]), recv)
                    .unwrap(),
            );
        }
        for h in handles {
            assert!(h.wait_for_timeout(1, Duration::from_secs(60)));
        }
        let expected: f32 = (0..n).map(|g| (iteration + g + 1) as f32).sum();
        for out in outs {
            assert!(
                out.to_f32_vec().iter().all(|&v| v == expected),
                "iteration {iteration}"
            );
        }
    }
    for rank in &ranks {
        rank.destroy();
    }
}

/// The simulator reproduces the paper's headline conclusion: tiny disorder and
/// synchronization probabilities produce deadlock ratios orders of magnitude
/// larger, and the synchronization probability matters more than disorder.
#[test]
fn deadlock_simulator_reproduces_sensitivity_conclusions() {
    let grouping = GroupingPolicy::free_table1(16, 6, 3, 2, 6, 60, 120);
    let base = SimConfig {
        grouping: grouping.clone(),
        model: DecisionModel::Synchronization,
        disorder_prob: 1e-3,
        sync_prob: 1e-3,
    };
    let rounds = 300;
    let base_ratio = estimate_deadlock_ratio(&base, rounds, 5);
    let more_sync = estimate_deadlock_ratio(
        &SimConfig {
            sync_prob: 1e-2,
            ..base.clone()
        },
        rounds,
        5,
    );
    let more_disorder = estimate_deadlock_ratio(
        &SimConfig {
            disorder_prob: 1e-2,
            ..base.clone()
        },
        rounds,
        5,
    );
    assert!(base_ratio >= 0.0);
    assert!(
        more_sync >= base_ratio,
        "sync sensitivity: {more_sync} vs {base_ratio}"
    );
    assert!(more_disorder >= base_ratio);
    // With both probabilities at 1%, the deadlock ratio far exceeds them
    // (Sec. 2.4.3 conclusion ❶).
    let both_high = estimate_deadlock_ratio(
        &SimConfig {
            disorder_prob: 3e-2,
            sync_prob: 3e-2,
            ..base
        },
        rounds,
        5,
    );
    assert!(
        both_high > 5e-2,
        "ratio {both_high} should exceed the probabilities"
    );
}
