//! Cross-crate integration tests for the training driver and property-based
//! tests for collective correctness under the full DFCCL stack.

use std::sync::Arc;
use std::time::Duration;

use dfccl_repro::baseline::StrategyKind;
use dfccl_repro::collectives::{DataType, DeviceBuffer, ReduceOp};
use dfccl_repro::dfccl::{DfcclConfig, DfcclDomain};
use dfccl_repro::gpu_sim::{GpuId, GpuSpec};
use dfccl_repro::transport::{LinkModel, Topology};
use dfccl_repro::workloads::{
    data_parallel_plan, three_d_hybrid_plan, train, BackendKind, DnnModel, TrainerConfig,
};
use proptest::prelude::*;

fn tiny_model() -> DnnModel {
    DnnModel {
        name: "tiny".to_string(),
        parameters: 8_192,
        layers: 4,
        hidden: 64,
        gradient_buckets: 4,
        compute_per_sample: 0.05,
    }
}

/// DFCCL and every orchestration baseline complete a small data-parallel
/// training run, and DFCCL's throughput is at least in the same ballpark as
/// the statically-sorted baseline (the Fig. 10 relationship, loosened for CI).
#[test]
fn data_parallel_training_throughput_relationship() {
    let gpus: Vec<GpuId> = (0..4).map(GpuId).collect();
    let plan = data_parallel_plan(&tiny_model(), &gpus, 16);
    let cfg = TrainerConfig {
        iterations: 5,
        zero_cost_links: false,
        link_compression: 10_000.0,
        ..TrainerConfig::fast_test(5)
    };
    let dfccl = train(&plan, BackendKind::Dfccl, &cfg, 64);
    let oneflow = train(
        &plan,
        BackendKind::NcclOrchestrated(StrategyKind::OneFlowStaticSort),
        &cfg,
        64,
    );
    let horovod = train(
        &plan,
        BackendKind::NcclOrchestrated(StrategyKind::Horovod),
        &cfg,
        64,
    );
    assert!(dfccl.throughput() > 0.0);
    assert!(oneflow.throughput() > 0.0);
    assert!(horovod.throughput() > 0.0);
    // Horovod pays coordination every iteration; it must not be faster than
    // the statically sorted baseline by any meaningful margin. Wall-clock
    // comparisons of two multi-threaded runs are noisy on small shared CI
    // machines, so "meaningful" is a generous 40% rather than 10%.
    assert!(
        horovod.mean_iteration() >= oneflow.mean_iteration() * 6 / 10,
        "horovod {:?} vs oneflow {:?}",
        horovod.mean_iteration(),
        oneflow.mean_iteration()
    );
}

/// A 3D-hybrid plan (TP+DP groups) trains to completion on DFCCL even when the
/// per-GPU invocation order is jittered every iteration.
#[test]
fn hybrid_training_with_disorder_completes_on_dfccl() {
    let plan = three_d_hybrid_plan(&tiny_model(), 2, 2, 2, 8);
    let cfg = TrainerConfig {
        dfccl_disorder_prob: 0.5,
        ..TrainerConfig::fast_test(3)
    };
    let report = train(&plan, BackendKind::Dfccl, &cfg, 16);
    assert_eq!(report.iteration_times.len(), 3);
    assert!(report.mean_iteration() > Duration::ZERO);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// All-reduce through the full DFCCL stack (SQ, daemon kernel, preemption,
    /// CQ, callbacks) produces exact results for arbitrary sizes, rank counts
    /// and input values, even with stress-level preemption.
    #[test]
    fn dfccl_all_reduce_is_exact_for_arbitrary_inputs(
        n in 2usize..5,
        count in 1usize..600,
        seed in 0u64..1_000,
    ) {
        let domain = DfcclDomain::new(
            Topology::flat(n),
            LinkModel::zero_cost(),
            GpuSpec::rtx_3090(),
            DfcclConfig::preemption_stress(),
        );
        let devices: Vec<GpuId> = (0..n).map(GpuId).collect();
        let ranks: Vec<_> = devices
            .iter()
            .map(|&g| Arc::new(domain.init_rank(g).unwrap()))
            .collect();
        for rank in &ranks {
            rank.register_all_reduce(1, count, DataType::F32, ReduceOp::Sum, devices.clone(), 0)
                .unwrap();
        }
        // Deterministic pseudo-random inputs derived from the seed.
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|g| {
                (0..count)
                    .map(|i| ((seed as usize + g * 31 + i * 7) % 97) as f32 - 48.0)
                    .collect()
            })
            .collect();
        let expected: Vec<f32> = (0..count)
            .map(|i| inputs.iter().map(|v| v[i]).sum())
            .collect();
        let mut handles = Vec::new();
        let mut outs = Vec::new();
        for (g, rank) in ranks.iter().enumerate() {
            let recv = DeviceBuffer::zeroed(count * 4);
            outs.push(recv.clone());
            handles.push(
                rank.run_awaitable(1, DeviceBuffer::from_f32(&inputs[g]), recv)
                    .unwrap(),
            );
        }
        for h in handles {
            prop_assert!(h.wait_for_timeout(1, Duration::from_secs(60)));
        }
        for out in outs {
            prop_assert_eq!(out.to_f32_vec(), expected.clone());
        }
        for rank in &ranks {
            rank.destroy();
        }
    }
}
