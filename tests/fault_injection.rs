//! Fault-injection suite: scripted link faults against the full DFCCL stack.
//!
//! Three layers of coverage:
//!
//! * A property sweep — a mid-collective slowdown on any single edge, across
//!   every algorithm family × rank counts 2–8 × channel counts 1–3, must
//!   complete bit-exact at connector capacity 1 (a degraded link slows a
//!   collective down, it never corrupts or wedges it).
//! * A dead edge must produce a [`StallReport`] naming exactly that
//!   `(src, dst, channel)` edge and the collective stuck behind it.
//! * The ISSUE acceptance scenario: a dead inter-node edge on a two-server
//!   cluster yields a link-failure report (and the telemetry snapshot shows
//!   the dead edge), then healing lets the collective finish bit-exact; a
//!   100× slowdown on the same edge completes with zero watchdog false
//!   positives.
//!
//! The sweep widens via `DFCCL_FAULT_SEEDS` (extra seeded edge choices per
//! combination; default 1, so any failure reproduces by seed alone).

use std::collections::HashMap;
use std::time::Duration;

use dfccl_repro::collectives::DeviceBuffer;
use dfccl_repro::collectives::{AlgorithmKind, CollectiveDescriptor, DataType, ReduceOp};
use dfccl_repro::dfccl::{
    DfcclConfig, DfcclDomain, RankCtx, RecoveryCoordinator, RetryPolicy, SpinPolicy,
};
use dfccl_repro::gpu_sim::{GpuId, GpuSpec};
use dfccl_repro::transport::{
    supervise_with_probe, EdgeId, FaultSpec, LinkClass, LinkModel, LinkParams, StallKind,
    SuperviseOutcome, Topology,
};

/// Extra seeded edge choices per sweep combination (CI widens this).
fn fault_seeds() -> u64 {
    std::env::var("DFCCL_FAULT_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Mild non-zero link costs: enough modelled time that a 50× slowdown is a
/// real mid-collective perturbation, small enough that sweeps stay fast.
fn mild_links() -> LinkModel {
    let classes = [
        LinkClass::Local,
        LinkClass::IntraPix,
        LinkClass::IntraSys,
        LinkClass::InterNode,
    ];
    let mut params = HashMap::new();
    for class in classes {
        params.insert(
            class,
            LinkParams {
                latency_ns: 1_000.0,
                bandwidth_gbps: f64::INFINITY,
            },
        );
    }
    LinkModel::new(params, Default::default())
}

/// The stress-grade config: minimal connector capacity, tiny chunks, a low
/// fixed spin threshold so preemption is constantly exercised.
fn fault_config(channels: usize) -> DfcclConfig {
    DfcclConfig {
        chunk_elems: 8,
        connector_capacity: 1,
        channels,
        spin: SpinPolicy::Fixed { threshold: 16 },
        ..DfcclConfig::for_testing()
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One sweep case: build the domain, register the collective, script a 50×
/// slowdown (activating after the first chunk) on a seeded edge of its
/// communicator, run it from every rank, and check the result is exactly
/// what a fault-free run produces.
fn slowdown_round(
    family: AlgorithmKind,
    topology: Topology,
    devices: Vec<GpuId>,
    channels: usize,
    seed: u64,
) {
    let n = devices.len();
    let domain = DfcclDomain::new(
        topology,
        mild_links(),
        GpuSpec::rtx_3090(),
        fault_config(channels),
    );
    let count = 16 * n; // divisible by every rank count, several chunks deep
    let desc = if family == AlgorithmKind::Pairwise {
        CollectiveDescriptor::all_to_all(count / n, DataType::F32, devices.clone())
    } else {
        CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, devices.clone())
    }
    .with_algorithm(family);

    let ranks: Vec<RankCtx> = devices
        .iter()
        .map(|&g| domain.init_rank(g).unwrap())
        .collect();
    for rank in &ranks {
        rank.register(1, desc.clone()).unwrap();
        assert_eq!(rank.algorithm_of(1), Some(family));
    }

    // Seeded single-edge choice over the edges the plan actually uses.
    let edges = domain.edge_samples();
    assert!(!edges.is_empty(), "{family} n={n} K={channels}: no edges");
    let victim = edges
        [(splitmix(seed ^ (n as u64) << 8 ^ (channels as u64) << 16) as usize) % edges.len()]
    .edge;
    domain
        .fault_injector()
        .script(victim, FaultSpec::slowdown(50.0).after_chunks(1));

    // Integer-valued inputs: every reduction order yields the same f32 bits.
    let inputs: Vec<Vec<f32>> = (0..n)
        .map(|r| {
            (0..count)
                .map(|i| ((seed as usize + r * 37 + i * 5) % 199) as f32)
                .collect()
        })
        .collect();
    let mut handles = Vec::new();
    let mut recvs = Vec::new();
    for (r, rank) in ranks.iter().enumerate() {
        let send = DeviceBuffer::from_f32(&inputs[r]);
        let recv = DeviceBuffer::zeroed(count * 4);
        recvs.push(recv.clone());
        handles.push(rank.run_awaitable(1, send, recv).unwrap());
    }
    for h in &handles {
        assert!(
            h.wait_for_timeout(1, Duration::from_secs(60)),
            "{family} n={n} K={channels} seed={seed}: slowdown on {victim} wedged the collective"
        );
    }
    for (r, recv) in recvs.iter().enumerate() {
        let expected: Vec<f32> = if family == AlgorithmKind::Pairwise {
            let per = count / n;
            (0..n)
                .flat_map(|src| inputs[src][r * per..(r + 1) * per].to_vec())
                .collect()
        } else {
            (0..count)
                .map(|i| (0..n).map(|src| inputs[src][i]).sum())
                .collect()
        };
        assert_eq!(
            recv.to_f32_vec(),
            expected,
            "{family} n={n} K={channels} seed={seed}: rank {r} result corrupted by slowdown on {victim}"
        );
    }
    for rank in ranks {
        assert!(rank.collective_errors().is_empty());
        rank.destroy();
    }
}

#[test]
fn mid_collective_slowdown_is_bit_exact_for_ring_and_tree() {
    for family in [AlgorithmKind::Ring, AlgorithmKind::DoubleBinaryTree] {
        for n in 2..=8usize {
            for channels in 1..=3usize {
                for seed in 0..fault_seeds() {
                    let devices: Vec<GpuId> = (0..n).map(GpuId).collect();
                    slowdown_round(family, Topology::flat(n), devices, channels, seed);
                }
            }
        }
    }
}

#[test]
fn mid_collective_slowdown_is_bit_exact_for_pairwise() {
    for n in 2..=8usize {
        for channels in 1..=3usize {
            for seed in 0..fault_seeds() {
                let devices: Vec<GpuId> = (0..n).map(GpuId).collect();
                slowdown_round(
                    AlgorithmKind::Pairwise,
                    Topology::flat(n),
                    devices,
                    channels,
                    seed,
                );
            }
        }
    }
}

#[test]
fn mid_collective_slowdown_is_bit_exact_for_hierarchical() {
    // Hierarchical needs a multi-node shape with equal node groups: two
    // nodes of n/2 GPUs each, so n ∈ {4, 6, 8}.
    for n in [4usize, 6, 8] {
        for channels in 1..=3usize {
            for seed in 0..fault_seeds() {
                let devices: Vec<GpuId> = (0..n).map(GpuId).collect();
                slowdown_round(
                    AlgorithmKind::Hierarchical,
                    Topology::uniform_cluster(2, n / 2),
                    devices,
                    channels,
                    seed,
                );
            }
        }
    }
}

#[test]
fn dead_edge_yields_a_stall_report_naming_it_then_healing_completes() {
    let domain = DfcclDomain::new(
        Topology::flat(2),
        mild_links(),
        GpuSpec::rtx_3090(),
        fault_config(1),
    );
    let devices = vec![GpuId(0), GpuId(1)];
    let count = 64;
    let ranks: Vec<RankCtx> = devices
        .iter()
        .map(|&g| domain.init_rank(g).unwrap())
        .collect();
    for rank in &ranks {
        rank.register_all_reduce(1, count, DataType::F32, ReduceOp::Sum, devices.clone(), 0)
            .unwrap();
    }
    let victim = EdgeId {
        src: GpuId(0),
        dst: GpuId(1),
        channel: dfccl_repro::transport::ChannelId(0),
    };
    assert!(
        domain.edge_samples().iter().any(|s| s.edge == victim),
        "the ring plan must use the chosen victim edge"
    );
    let injector = domain.fault_injector();
    injector.script(victim, FaultSpec::dead());

    let handles: Vec<_> = ranks
        .iter()
        .enumerate()
        .map(|(r, rank)| {
            rank.run_awaitable(
                1,
                DeviceBuffer::from_f32(&vec![(r + 1) as f32; count]),
                DeviceBuffer::zeroed(count * 4),
            )
            .unwrap()
        })
        .collect();

    let done = || {
        handles
            .iter()
            .all(|h| h.wait_for_timeout(1, Duration::ZERO))
    };
    let probe = || domain.edge_samples();
    let outcome = supervise_with_probe(&done, Duration::from_millis(300), &probe);
    let SuperviseOutcome::Stalled(report) = outcome else {
        panic!("a dead edge must stall the collective, got {outcome:?}");
    };
    assert_eq!(report.kind, StallKind::LinkFailure, "{report}");
    assert!(
        report.failed_edges.iter().any(|s| s.edge == victim),
        "report must name the dead edge: {report}"
    );
    assert_eq!(report.stalled_collectives, vec![1], "{report}");

    // Heal the link: the preempted collective resumes and finishes exact.
    injector.clear();
    for h in &handles {
        assert!(
            h.wait_for_timeout(1, Duration::from_secs(60)),
            "healing the edge must un-stall the collective"
        );
    }
    for rank in ranks {
        assert!(rank.collective_errors().is_empty());
        rank.destroy();
    }
}

/// The acceptance scenario from the issue, phase A: a seeded stress run with
/// an injected dead inter-node edge yields a `StallReport` identifying the
/// failed `(src, dst, channel)` edge and the stalled collectives — and the
/// rank telemetry shows the same edge dead.
#[test]
fn dead_inter_node_edge_is_identified_and_healable_on_two_servers() {
    let devices = vec![GpuId(0), GpuId(1), GpuId(8), GpuId(9)];
    let domain = DfcclDomain::new(
        Topology::two_servers(),
        LinkModel::table2_testbed(),
        GpuSpec::rtx_3090(),
        fault_config(1),
    );
    let count = 64;
    let ranks: Vec<RankCtx> = devices
        .iter()
        .map(|&g| domain.init_rank(g).unwrap())
        .collect();
    for rank in &ranks {
        rank.register_all_reduce(1, count, DataType::F32, ReduceOp::Sum, devices.clone(), 0)
            .unwrap();
    }
    // Discover an inter-node edge the plan actually crosses.
    let victim = domain
        .edge_samples()
        .iter()
        .find(|s| s.link == LinkClass::InterNode)
        .expect("a 2×2-rank collective over two servers crosses the fabric")
        .edge;
    let injector = domain.fault_injector();
    injector.script(victim, FaultSpec::dead());

    let inputs: Vec<Vec<f32>> = (0..devices.len())
        .map(|r| (0..count).map(|i| ((r * 31 + i * 7) % 97) as f32).collect())
        .collect();
    let mut handles = Vec::new();
    let mut recvs = Vec::new();
    for (r, rank) in ranks.iter().enumerate() {
        let recv = DeviceBuffer::zeroed(count * 4);
        recvs.push(recv.clone());
        handles.push(
            rank.run_awaitable(1, DeviceBuffer::from_f32(&inputs[r]), recv)
                .unwrap(),
        );
    }

    let done = || {
        handles
            .iter()
            .all(|h| h.wait_for_timeout(1, Duration::ZERO))
    };
    let probe = || domain.edge_samples();
    let outcome = supervise_with_probe(&done, Duration::from_millis(400), &probe);
    let SuperviseOutcome::Stalled(report) = outcome else {
        panic!("dead inter-node edge must stall the all-reduce, got {outcome:?}");
    };
    assert_eq!(report.kind, StallKind::LinkFailure, "{report}");
    assert!(
        report.failed_edges.iter().any(|s| s.edge == victim),
        "report must identify the failed inter-node edge: {report}"
    );
    assert_eq!(report.stalled_collectives, vec![1], "{report}");

    // The telemetry snapshot of any rank names the same dead edge and shows
    // the daemon preempting the stuck collective rather than busy-hanging.
    let snap = ranks[0].telemetry();
    assert!(
        snap.dead_edges().any(|s| s.edge == victim),
        "telemetry must show the dead edge:\n{snap}"
    );
    assert!(snap.counters.preemptions > 0, "stuck work must preempt");
    assert_eq!(snap.counters.completions, 0);

    // Heal, drain, verify bit-exactness end to end.
    injector.clear();
    for h in &handles {
        assert!(
            h.wait_for_timeout(1, Duration::from_secs(120)),
            "healed inter-node edge must let the all-reduce finish"
        );
    }
    let expected: Vec<f32> = (0..count)
        .map(|i| (0..devices.len()).map(|r| inputs[r][i]).sum())
        .collect();
    for (r, recv) in recvs.iter().enumerate() {
        assert_eq!(recv.to_f32_vec(), expected, "rank {r} result after healing");
    }
    let snap = ranks[0].telemetry();
    assert_eq!(
        snap.counters.completions, 1,
        "telemetry sees the completion"
    );
    for rank in ranks {
        assert!(rank.collective_errors().is_empty());
        rank.destroy();
    }
}

/// The acceptance scenario, phase B: a 100× slowdown on the same inter-node
/// edge completes with zero watchdog false positives — the supervisor must
/// return `AllCompleted`, never a stall report.
#[test]
fn slow_inter_node_edge_completes_with_zero_watchdog_false_positives() {
    let devices = vec![GpuId(0), GpuId(1), GpuId(8), GpuId(9)];
    let domain = DfcclDomain::new(
        Topology::two_servers(),
        LinkModel::table2_testbed(),
        GpuSpec::rtx_3090(),
        fault_config(1),
    );
    let count = 64;
    let ranks: Vec<RankCtx> = devices
        .iter()
        .map(|&g| domain.init_rank(g).unwrap())
        .collect();
    for rank in &ranks {
        rank.register_all_reduce(1, count, DataType::F32, ReduceOp::Sum, devices.clone(), 0)
            .unwrap();
    }
    let victim = domain
        .edge_samples()
        .iter()
        .find(|s| s.link == LinkClass::InterNode)
        .expect("inter-node edge present")
        .edge;
    domain
        .fault_injector()
        .script(victim, FaultSpec::slowdown(100.0));

    let inputs: Vec<Vec<f32>> = (0..devices.len())
        .map(|r| (0..count).map(|i| ((r * 13 + i * 3) % 89) as f32).collect())
        .collect();
    let mut handles = Vec::new();
    let mut recvs = Vec::new();
    for (r, rank) in ranks.iter().enumerate() {
        let recv = DeviceBuffer::zeroed(count * 4);
        recvs.push(recv.clone());
        handles.push(
            rank.run_awaitable(1, DeviceBuffer::from_f32(&inputs[r]), recv)
                .unwrap(),
        );
    }

    // A tight 150 ms no-progress deadline: 100× on a 4.5 µs-latency link is
    // ~0.5 ms per chunk, so progress ticks well inside every window. Any
    // false positive fails the test.
    let done = || {
        handles
            .iter()
            .all(|h| h.wait_for_timeout(1, Duration::ZERO))
    };
    let probe = || domain.edge_samples();
    let outcome = supervise_with_probe(&done, Duration::from_millis(150), &probe);
    assert_eq!(
        outcome,
        SuperviseOutcome::AllCompleted,
        "a slow-but-progressing edge must never be reported as a stall"
    );
    let expected: Vec<f32> = (0..count)
        .map(|i| (0..devices.len()).map(|r| inputs[r][i]).sum())
        .collect();
    for (r, recv) in recvs.iter().enumerate() {
        assert_eq!(recv.to_f32_vec(), expected, "rank {r} under 100× slowdown");
    }
    for (r, rank) in ranks.iter().enumerate() {
        let snap = rank.telemetry();
        assert_eq!(snap.counters.completions, 1, "rank {r}");
        assert_eq!(snap.counters.failures, 0, "rank {r}");
    }
    for rank in ranks {
        assert!(rank.collective_errors().is_empty());
        rank.destroy();
    }
}

/// A flaky edge (intermittent drops) never corrupts data: every dropped send
/// is retried until it lands, so the result stays bit-exact.
#[test]
fn flaky_edge_retries_to_a_bit_exact_result() {
    for seed in 0..fault_seeds().max(2) {
        let domain = DfcclDomain::new(
            Topology::flat(4),
            mild_links(),
            GpuSpec::rtx_3090(),
            fault_config(2),
        );
        let devices: Vec<GpuId> = (0..4).map(GpuId).collect();
        let count = 64;
        let ranks: Vec<RankCtx> = devices
            .iter()
            .map(|&g| domain.init_rank(g).unwrap())
            .collect();
        for rank in &ranks {
            rank.register_all_reduce(1, count, DataType::F32, ReduceOp::Sum, devices.clone(), 0)
                .unwrap();
        }
        let injector = domain.fault_injector();
        injector.set_seed(seed);
        // Every edge of the collective drops 30% of send attempts.
        for s in domain.edge_samples() {
            injector.script(s.edge, FaultSpec::flaky(0.3));
        }
        let inputs: Vec<Vec<f32>> = (0..4)
            .map(|r| {
                (0..count)
                    .map(|i| ((seed as usize + r * 11 + i) % 127) as f32)
                    .collect()
            })
            .collect();
        let mut handles = Vec::new();
        let mut recvs = Vec::new();
        for (r, rank) in ranks.iter().enumerate() {
            let recv = DeviceBuffer::zeroed(count * 4);
            recvs.push(recv.clone());
            handles.push(
                rank.run_awaitable(1, DeviceBuffer::from_f32(&inputs[r]), recv)
                    .unwrap(),
            );
        }
        for h in &handles {
            assert!(
                h.wait_for_timeout(1, Duration::from_secs(60)),
                "seed {seed}: flaky edges wedged the collective"
            );
        }
        let expected: Vec<f32> = (0..count)
            .map(|i| (0..4).map(|r| inputs[r][i]).sum())
            .collect();
        for (r, recv) in recvs.iter().enumerate() {
            assert_eq!(
                recv.to_f32_vec(),
                expected,
                "seed {seed}: rank {r} corrupted by flaky drops"
            );
        }
        // The drops actually happened (the fault path was exercised).
        let rejections: u64 = domain
            .edge_samples()
            .iter()
            .map(|s| s.stats.fault_rejections)
            .sum();
        assert!(rejections > 0, "seed {seed}: no drop was ever injected");
        for rank in ranks {
            assert!(rank.collective_errors().is_empty());
            rank.destroy();
        }
    }
}

/// A tight retry policy for recovery tests: fast backoff, a few attempts.
fn test_recovery() -> RecoveryCoordinator {
    RecoveryCoordinator::new(
        RetryPolicy::default()
            .with_max_attempts(4)
            .with_backoff(Duration::from_micros(50), Duration::from_millis(2)),
    )
}

/// One auto-recovery sweep case: register the collective, kill a seeded edge
/// of its communicator after the first chunk — and never heal it. The
/// [`RecoveryCoordinator`] must detect the stall, quarantine the edge,
/// re-plan around it, roll the stalled invocations back and resubmit them,
/// and the final result must match a fault-free run bit for bit.
fn recovery_round(
    family: AlgorithmKind,
    topology: Topology,
    devices: Vec<GpuId>,
    channels: usize,
    seed: u64,
) {
    let n = devices.len();
    let domain = DfcclDomain::new(
        topology,
        mild_links(),
        GpuSpec::rtx_3090(),
        fault_config(channels),
    );
    let count = 16 * n;
    let desc = if family == AlgorithmKind::Pairwise {
        CollectiveDescriptor::all_to_all(count / n, DataType::F32, devices.clone())
    } else {
        CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, devices.clone())
    }
    .with_algorithm(family);

    let ranks: Vec<RankCtx> = devices
        .iter()
        .map(|&g| domain.init_rank(g).unwrap())
        .collect();
    for rank in &ranks {
        rank.register(1, desc.clone()).unwrap();
    }
    let inputs: Vec<Vec<f32>> = (0..n)
        .map(|r| {
            (0..count)
                .map(|i| ((seed as usize + r * 37 + i * 5) % 199) as f32)
                .collect()
        })
        .collect();

    // Warm-up round: a fault-free invocation reveals which edges the plan
    // actually routes chunks over (a mesh edge can stay idle for a given
    // chunk/channel split) and how many chunks each carries per round.
    let warm: Vec<_> = ranks
        .iter()
        .enumerate()
        .map(|(r, rank)| {
            rank.run_awaitable(
                1,
                DeviceBuffer::from_f32(&inputs[r]),
                DeviceBuffer::zeroed(count * 4),
            )
            .unwrap()
        })
        .collect();
    for h in &warm {
        assert!(h.wait_for_timeout(1, Duration::from_secs(60)));
    }
    let busy: Vec<_> = domain
        .edge_samples()
        .into_iter()
        .filter(|s| s.stats.chunks_sent > 0)
        .collect();
    assert!(!busy.is_empty(), "{family} n={n} K={channels}: no traffic");
    let sample =
        &busy[(splitmix(seed ^ (n as u64) << 8 ^ (channels as u64) << 16) as usize) % busy.len()];
    let victim = sample.edge;
    // An edge carrying several chunks per round is killed mid-round-two
    // (one more chunk crosses, then it dies); one carrying a single chunk
    // is dead for the whole second round.
    let spec = if sample.stats.chunks_sent > 1 {
        FaultSpec::dead().after_chunks(sample.stats.chunks_sent + 1)
    } else {
        FaultSpec::dead()
    };
    domain.fault_injector().script(victim, spec);

    let mut handles = Vec::new();
    let mut recvs = Vec::new();
    for (r, rank) in ranks.iter().enumerate() {
        let send = DeviceBuffer::from_f32(&inputs[r]);
        let recv = DeviceBuffer::zeroed(count * 4);
        recvs.push(recv.clone());
        handles.push(rank.run_awaitable(1, send, recv).unwrap());
    }

    let done = || {
        handles
            .iter()
            .all(|h| h.wait_for_timeout(1, Duration::ZERO))
    };
    let rank_refs: Vec<&RankCtx> = ranks.iter().collect();
    let recoveries = test_recovery()
        .supervise(&rank_refs, &done, Duration::from_millis(200))
        .unwrap_or_else(|e| {
            panic!("{family} n={n} K={channels} seed={seed}: recovery failed: {e}")
        });
    assert!(
        recoveries >= 1,
        "{family} n={n} K={channels} seed={seed}: dead edge {victim} must trigger recovery"
    );
    assert!(
        domain.link_health().dead_edges().contains(&victim),
        "{family} n={n} K={channels} seed={seed}: {victim} must stay quarantined"
    );

    for (r, recv) in recvs.iter().enumerate() {
        let expected: Vec<f32> = if family == AlgorithmKind::Pairwise {
            let per = count / n;
            (0..n)
                .flat_map(|src| inputs[src][r * per..(r + 1) * per].to_vec())
                .collect()
        } else {
            (0..count)
                .map(|i| (0..n).map(|src| inputs[src][i]).sum())
                .collect()
        };
        assert_eq!(
            recv.to_f32_vec(),
            expected,
            "{family} n={n} K={channels} seed={seed}: rank {r} corrupted by recovery from {victim}"
        );
    }
    for rank in &ranks {
        let snap = rank.telemetry();
        assert!(snap.counters.recoveries_attempted >= 1, "{snap}");
        assert!(snap.counters.recoveries_succeeded >= 1, "{snap}");
    }
    for rank in ranks {
        assert!(rank.collective_errors().is_empty());
        rank.destroy();
    }
}

#[test]
fn kill_edge_auto_recovers_bit_exact_for_ring_and_tree() {
    for family in [AlgorithmKind::Ring, AlgorithmKind::DoubleBinaryTree] {
        for n in 2..=8usize {
            for channels in 1..=3usize {
                for seed in 0..fault_seeds() {
                    let devices: Vec<GpuId> = (0..n).map(GpuId).collect();
                    recovery_round(family, Topology::flat(n), devices, channels, seed);
                }
            }
        }
    }
}

#[test]
fn kill_edge_auto_recovers_bit_exact_for_pairwise() {
    for n in 2..=8usize {
        for channels in 1..=3usize {
            for seed in 0..fault_seeds() {
                let devices: Vec<GpuId> = (0..n).map(GpuId).collect();
                recovery_round(
                    AlgorithmKind::Pairwise,
                    Topology::flat(n),
                    devices,
                    channels,
                    seed,
                );
            }
        }
    }
}

#[test]
fn kill_edge_auto_recovers_bit_exact_for_hierarchical() {
    for n in [4usize, 6, 8] {
        for channels in 1..=3usize {
            for seed in 0..fault_seeds() {
                let devices: Vec<GpuId> = (0..n).map(GpuId).collect();
                recovery_round(
                    AlgorithmKind::Hierarchical,
                    Topology::uniform_cluster(2, n / 2),
                    devices,
                    channels,
                    seed,
                );
            }
        }
    }
}

/// The ISSUE acceptance scenario, self-healing edition: a dead inter-node
/// edge on a two-server cluster is **never healed**. The coordinator's
/// supervise loop must quarantine it, re-plan around it, and finish the
/// collective bit-exact against the fault-free oracle — and a collective
/// registered afterwards must be planned without the quarantined edge.
#[test]
fn dead_inter_node_edge_auto_recovers_without_manual_heal() {
    let devices = vec![GpuId(0), GpuId(1), GpuId(8), GpuId(9)];
    let domain = DfcclDomain::new(
        Topology::two_servers(),
        LinkModel::table2_testbed(),
        GpuSpec::rtx_3090(),
        fault_config(1),
    );
    let count = 64;
    let ranks: Vec<RankCtx> = devices
        .iter()
        .map(|&g| domain.init_rank(g).unwrap())
        .collect();
    for rank in &ranks {
        rank.register_all_reduce(1, count, DataType::F32, ReduceOp::Sum, devices.clone(), 0)
            .unwrap();
    }
    let victim = domain
        .edge_samples()
        .iter()
        .find(|s| s.link == LinkClass::InterNode)
        .expect("a 2×2-rank collective over two servers crosses the fabric")
        .edge;
    // Killed mid-flight, never cleared: recovery is the only way out.
    domain
        .fault_injector()
        .script(victim, FaultSpec::dead().after_chunks(1));

    let inputs: Vec<Vec<f32>> = (0..devices.len())
        .map(|r| (0..count).map(|i| ((r * 31 + i * 7) % 97) as f32).collect())
        .collect();
    let mut handles = Vec::new();
    let mut recvs = Vec::new();
    for (r, rank) in ranks.iter().enumerate() {
        let recv = DeviceBuffer::zeroed(count * 4);
        recvs.push(recv.clone());
        handles.push(
            rank.run_awaitable(1, DeviceBuffer::from_f32(&inputs[r]), recv)
                .unwrap(),
        );
    }
    let done = || {
        handles
            .iter()
            .all(|h| h.wait_for_timeout(1, Duration::ZERO))
    };
    let rank_refs: Vec<&RankCtx> = ranks.iter().collect();
    let recoveries = test_recovery()
        .supervise(&rank_refs, &done, Duration::from_millis(300))
        .expect("supervised run must recover, not exhaust");
    assert!(
        recoveries >= 1,
        "the dead fabric edge must force a recovery"
    );

    let expected: Vec<f32> = (0..count)
        .map(|i| (0..devices.len()).map(|r| inputs[r][i]).sum())
        .collect();
    for (r, recv) in recvs.iter().enumerate() {
        assert_eq!(
            recv.to_f32_vec(),
            expected,
            "rank {r} after automatic recovery"
        );
    }
    assert!(
        domain.link_health().dead_edges().contains(&victim),
        "the failed edge must stay quarantined"
    );
    for rank in &ranks {
        let snap = rank.telemetry();
        assert!(snap.counters.recoveries_attempted >= 1, "{snap}");
        assert!(snap.counters.recoveries_succeeded >= 1, "{snap}");
    }

    // The quarantine outlives the incident: a collective registered *after*
    // the failure must be planned without the dead edge.
    for rank in &ranks {
        rank.register_all_reduce(2, count, DataType::F32, ReduceOp::Sum, devices.clone(), 0)
            .unwrap();
    }
    assert!(
        !domain
            .edge_samples()
            .iter()
            .any(|s| s.coll_id == Some(2) && s.edge == victim),
        "a post-failure plan must not be laid over the quarantined edge"
    );
    let mut handles2 = Vec::new();
    let mut recvs2 = Vec::new();
    for (r, rank) in ranks.iter().enumerate() {
        let recv = DeviceBuffer::zeroed(count * 4);
        recvs2.push(recv.clone());
        handles2.push(
            rank.run_awaitable(2, DeviceBuffer::from_f32(&inputs[r]), recv)
                .unwrap(),
        );
    }
    for h in &handles2 {
        assert!(
            h.wait_for_timeout(1, Duration::from_secs(60)),
            "the degraded plan must complete without recovery"
        );
    }
    for (r, recv) in recvs2.iter().enumerate() {
        assert_eq!(recv.to_f32_vec(), expected, "rank {r} on the degraded plan");
    }
    for rank in ranks {
        assert!(rank.collective_errors().is_empty());
        rank.destroy();
    }
}

/// Recovery in the middle of a preemption storm: four collectives over
/// overlapping device groups at connector capacity 1 and a tiny spin
/// threshold, the dense all-reduce invoked twice, and a dead edge injected
/// under all of it. Everything — stalled and innocent alike — must drain
/// bit-exact through the automatic recovery.
#[test]
fn recovery_survives_a_preemption_storm() {
    for seed in 0..fault_seeds() {
        let domain = DfcclDomain::new(
            Topology::flat(4),
            mild_links(),
            GpuSpec::rtx_3090(),
            fault_config(1),
        );
        let devices: Vec<GpuId> = (0..4).map(GpuId).collect();
        let a2a_per = 24usize;
        let ar_count = 96usize;
        let pair_count = 64usize;
        let mix: Vec<(u64, CollectiveDescriptor)> = vec![
            (
                1,
                CollectiveDescriptor::all_to_all(a2a_per, DataType::F32, devices.clone()),
            ),
            (
                2,
                CollectiveDescriptor::all_reduce(
                    ar_count,
                    DataType::F32,
                    ReduceOp::Sum,
                    devices.clone(),
                ),
            ),
            (
                3,
                CollectiveDescriptor::all_reduce(
                    pair_count,
                    DataType::F32,
                    ReduceOp::Sum,
                    vec![GpuId(0), GpuId(1)],
                ),
            ),
            (
                4,
                CollectiveDescriptor::all_reduce(
                    pair_count,
                    DataType::F32,
                    ReduceOp::Sum,
                    vec![GpuId(2), GpuId(3)],
                ),
            ),
        ];
        let ranks: Vec<RankCtx> = devices
            .iter()
            .map(|&g| domain.init_rank(g).unwrap())
            .collect();
        for rank in &ranks {
            for (id, desc) in &mix {
                if desc.devices.contains(&rank.gpu()) {
                    rank.register(*id, desc.clone()).unwrap();
                }
            }
        }
        // Kill a seeded edge of the dense all-reduce mid-storm.
        let ar_edges: Vec<_> = domain
            .edge_samples()
            .into_iter()
            .filter(|s| s.coll_id == Some(2))
            .collect();
        let victim = ar_edges[(splitmix(seed ^ 0xdead) as usize) % ar_edges.len()].edge;
        domain
            .fault_injector()
            .script(victim, FaultSpec::dead().after_chunks(2));

        // Integer-valued inputs per (collective, invocation, rank).
        let input = |coll: u64, invocation: usize, r: usize, len: usize| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    ((seed as usize + coll as usize * 53 + invocation * 17 + r * 37 + i * 5) % 199)
                        as f32
                })
                .collect()
        };
        // Each rank submits its collectives in a rotated order, so the storm
        // arrives disordered. Invocations of the *same* collective must keep
        // a consistent per-rank issue order (they gang-match by issue
        // index), so the dense all-reduce's two invocations stay adjacent.
        let mut handles = Vec::new();
        let mut checks: Vec<(usize, Vec<f32>, DeviceBuffer)> = Vec::new();
        for (r, rank) in ranks.iter().enumerate() {
            let mut coll_order: Vec<u64> = vec![1, 2, if r < 2 { 3 } else { 4 }];
            let rot = r % coll_order.len();
            coll_order.rotate_left(rot);
            let order: Vec<(u64, usize)> = coll_order
                .into_iter()
                .flat_map(|id| {
                    if id == 2 {
                        vec![(2, 0), (2, 1)]
                    } else {
                        vec![(id, 0)]
                    }
                })
                .collect();
            for (id, invocation) in order {
                let desc = &mix.iter().find(|(i, _)| *i == id).unwrap().1;
                let rank_idx = desc.devices.iter().position(|&d| d == rank.gpu()).unwrap();
                let send_len = desc.send_bytes(rank_idx) / 4;
                let send = input(id, invocation, r, send_len);
                let recv = DeviceBuffer::zeroed(desc.recv_bytes(rank_idx));
                let expected: Vec<f32> = match id {
                    1 => (0..4)
                        .flat_map(|src| {
                            input(1, invocation, src, 4 * a2a_per)[r * a2a_per..(r + 1) * a2a_per]
                                .to_vec()
                        })
                        .collect(),
                    2 => (0..ar_count)
                        .map(|i| {
                            (0..4)
                                .map(|src| input(2, invocation, src, ar_count)[i])
                                .sum()
                        })
                        .collect(),
                    _ => {
                        let group = if id == 3 { [0usize, 1] } else { [2, 3] };
                        (0..pair_count)
                            .map(|i| {
                                group
                                    .iter()
                                    .map(|&src| input(id, invocation, src, pair_count)[i])
                                    .sum()
                            })
                            .collect()
                    }
                };
                checks.push((r, expected, recv.clone()));
                handles.push(
                    rank.run_awaitable(id, DeviceBuffer::from_f32(&send), recv)
                        .unwrap(),
                );
            }
        }

        let done = || {
            handles
                .iter()
                .all(|h| h.wait_for_timeout(1, Duration::ZERO))
        };
        let rank_refs: Vec<&RankCtx> = ranks.iter().collect();
        let recoveries = test_recovery()
            .supervise(&rank_refs, &done, Duration::from_millis(200))
            .unwrap_or_else(|e| panic!("seed {seed}: storm recovery failed: {e}"));
        assert!(recoveries >= 1, "seed {seed}: {victim} must force recovery");
        assert!(domain.link_health().dead_edges().contains(&victim));
        for (r, expected, recv) in &checks {
            assert_eq!(
                &recv.to_f32_vec(),
                expected,
                "seed {seed}: rank {r} corrupted in the storm"
            );
        }
        for rank in ranks {
            assert!(rank.collective_errors().is_empty(), "seed {seed}");
            rank.destroy();
        }
    }
}
