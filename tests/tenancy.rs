//! Service-mode isolation suite: per-tenant quotas must turn into typed,
//! retryable backpressure (never a wedge), and weighted-fair arbitration must
//! keep a heavy tenant from starving a light one beyond its weight share.

use std::sync::Arc;
use std::time::Duration;

use dfccl_repro::collectives::{DataType, DeviceBuffer, ReduceOp};
use dfccl_repro::dfccl::{
    AdmissionError, DfcclConfig, DfcclDomain, DfcclError, SpinPolicy, TenantQuota,
};
use dfccl_repro::gpu_sim::{GpuId, GpuSpec};
use dfccl_repro::transport::{LinkModel, Topology};

fn devices2() -> Vec<GpuId> {
    vec![GpuId(0), GpuId(1)]
}

/// A tenant at `max_outstanding` gets `AtQuota` backpressure — typed and
/// retryable — while another tenant on the same rank keeps completing, and a
/// retry succeeds once the tenant's own completions drain.
#[test]
fn tenant_at_quota_gets_retryable_backpressure_while_others_progress() {
    let domain = DfcclDomain::flat_for_testing(2);
    let limited = domain.tenant(TenantQuota::default().with_max_outstanding(2));
    let roomy = domain.tenant(TenantQuota::default());
    let rank0 = domain.init_rank(GpuId(0)).unwrap();
    let rank1 = domain.init_rank(GpuId(1)).unwrap();
    for rank in [&rank0, &rank1] {
        rank.register_all_reduce_for(&limited, 10, 8, DataType::F32, ReduceOp::Sum, devices2(), 0)
            .unwrap();
        rank.register_all_reduce_for(&roomy, 20, 8, DataType::F32, ReduceOp::Sum, devices2(), 0)
            .unwrap();
    }
    let run = |rank: &dfccl_repro::dfccl::RankCtx, id: u64| {
        rank.run_awaitable(id, DeviceBuffer::zeroed(32), DeviceBuffer::zeroed(32))
    };

    // Pin the limited tenant at its quota: rank 0 submits twice, rank 1
    // withholds its peers, so neither invocation can complete.
    let pinned = [run(&rank0, 10).unwrap(), run(&rank0, 10).unwrap()];
    let err = match run(&rank0, 10) {
        Err(e) => e,
        Ok(_) => panic!("the third run must be refused at quota"),
    };
    match err {
        DfcclError::Admission(e) => {
            assert!(e.is_retryable(), "AtQuota must be the retry signal: {e}");
            assert_eq!(e.tenant(), limited.id());
            assert!(matches!(e, AdmissionError::AtQuota { outstanding: 2, .. }));
        }
        other => panic!("expected typed admission backpressure, got {other:?}"),
    }

    // Backpressure, not a wedge: the other tenant completes meanwhile.
    let b0 = run(&rank0, 20).unwrap();
    let b1 = run(&rank1, 20).unwrap();
    assert!(b0.wait_for_timeout(1, Duration::from_secs(30)));
    assert!(b1.wait_for_timeout(1, Duration::from_secs(30)));

    // Release the pinned invocations and retry: the slot has drained.
    let peers = [run(&rank1, 10).unwrap(), run(&rank1, 10).unwrap()];
    for h in pinned.iter().chain(peers.iter()) {
        assert!(h.wait_for_timeout(1, Duration::from_secs(30)));
    }
    let retry0 = run(&rank0, 10).unwrap();
    let retry1 = run(&rank1, 10).unwrap();
    assert!(retry0.wait_for_timeout(1, Duration::from_secs(30)));
    assert!(retry1.wait_for_timeout(1, Duration::from_secs(30)));

    let stats = rank0.tenant_stats();
    let lim = stats.iter().find(|s| s.tenant == limited.id()).unwrap();
    assert_eq!(lim.submitted, 3, "the refused run was never admitted");
    assert_eq!(lim.completed, 3);
    assert_eq!(lim.outstanding, 0);
    rank0.destroy();
    rank1.destroy();
}

/// The residency budget caps registrations per rank and is not retryable.
#[test]
fn residency_budget_caps_registrations_per_rank() {
    let domain = DfcclDomain::flat_for_testing(2);
    let tenant = domain.tenant(TenantQuota::default().with_residency_budget(1));
    let rank0 = domain.init_rank(GpuId(0)).unwrap();
    rank0
        .register_all_reduce_for(&tenant, 30, 8, DataType::F32, ReduceOp::Sum, devices2(), 0)
        .unwrap();
    let err = rank0
        .register_all_reduce_for(&tenant, 31, 8, DataType::F32, ReduceOp::Sum, devices2(), 0)
        .unwrap_err();
    match err {
        DfcclError::Admission(e) => {
            assert!(!e.is_retryable(), "residency needs operator action: {e}");
            assert!(matches!(e, AdmissionError::ResidencyExhausted { .. }));
        }
        other => panic!("expected residency backpressure, got {other:?}"),
    }
    rank0.destroy();
}

/// A handle this domain never minted is rejected, not silently accounted.
#[test]
fn foreign_tenant_handles_are_rejected() {
    let domain = DfcclDomain::flat_for_testing(2);
    let other = DfcclDomain::flat_for_testing(2);
    let foreign = other.tenant(TenantQuota::default());
    let rank0 = domain.init_rank(GpuId(0)).unwrap();
    let err = rank0
        .register_all_reduce_for(&foreign, 40, 8, DataType::F32, ReduceOp::Sum, devices2(), 0)
        .unwrap_err();
    assert!(
        matches!(
            err,
            DfcclError::Admission(AdmissionError::UnknownTenant(id)) if id == foreign.id()
        ),
        "got {err:?}"
    );
    rank0.destroy();
}

/// The fairness proof: under a preemption-storm tenant hammering heavy
/// collectives, a weight-2 tenant completes at roughly twice the rate of an
/// identically-loaded weight-1 tenant, and nobody starves or wedges.
#[test]
fn weighted_tenant_outpaces_light_tenant_under_preemption_storm() {
    const STORM_COLLS: u64 = 6;
    const STORM_INVOCATIONS: usize = 10;
    const JOB_COLLS: u64 = 4;
    const JOB_INVOCATIONS: usize = 25;

    // One connector slot and a quantum of 1 so the weighted-fair budgets
    // bind on every pass. The spin threshold must be LARGE here: a slice
    // has to keep polling across an OS preemption so the peer daemon can
    // hand chunks back within the slice, making scheduling grants — not
    // connector hand-offs — the resource that gates progress. With short
    // slices every queued collective moves exactly one chunk per OS
    // quantum (each granted slice just fills its capacity-1 slot and
    // blocks), which erases the very differentiation this test measures.
    let config = DfcclConfig {
        chunk_elems: 64,
        connector_capacity: 1,
        spin: SpinPolicy::Fixed { threshold: 4096 },
        tenant_quantum: 1,
        ..DfcclConfig::for_testing()
    };
    let domain = DfcclDomain::new(
        Topology::flat(2),
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        config,
    );
    let storm = domain.tenant(TenantQuota::default().with_weight(1));
    let heavy = domain.tenant(TenantQuota::default().with_weight(2));
    let light = domain.tenant(TenantQuota::default().with_weight(1));
    let ranks: Vec<_> = (0..2)
        .map(|g| Arc::new(domain.init_rank(GpuId(g)).unwrap()))
        .collect();
    for rank in &ranks {
        for c in 0..STORM_COLLS {
            rank.register_all_reduce_for(
                &storm,
                100 + c,
                4096,
                DataType::F32,
                ReduceOp::Sum,
                devices2(),
                0,
            )
            .unwrap();
        }
        // Job collectives are deep (2048 elems = 32 chunks at chunk_elems
        // 64) so the job lanes stay backlogged for the whole measurement
        // window and every invocation needs many slice grants to drain.
        for c in 0..JOB_COLLS {
            rank.register_all_reduce_for(
                &heavy,
                200 + c,
                2048,
                DataType::F32,
                ReduceOp::Sum,
                devices2(),
                0,
            )
            .unwrap();
            rank.register_all_reduce_for(
                &light,
                300 + c,
                2048,
                DataType::F32,
                ReduceOp::Sum,
                devices2(),
                0,
            )
            .unwrap();
        }
    }

    // One submitter thread per (rank, tenant): submit the tenant's full
    // workload up front, retrying on rank-wide SQ backpressure, and return
    // the completion handles.
    let submit = |rank: &Arc<dfccl_repro::dfccl::RankCtx>, base: u64, colls: u64, inv: usize| {
        let rank = Arc::clone(rank);
        std::thread::spawn(move || {
            let bytes = |id: u64| {
                if (100..200).contains(&id) {
                    16384
                } else {
                    8192
                }
            };
            let mut handles = Vec::new();
            for _ in 0..inv {
                for c in 0..colls {
                    let id = base + c;
                    loop {
                        match rank.run_awaitable(
                            id,
                            DeviceBuffer::zeroed(bytes(id)),
                            DeviceBuffer::zeroed(bytes(id)),
                        ) {
                            Ok(h) => {
                                handles.push(h);
                                break;
                            }
                            Err(DfcclError::SubmissionQueueFull) => {
                                std::thread::sleep(Duration::from_micros(100));
                            }
                            Err(e) => panic!("unexpected submit error: {e:?}"),
                        }
                    }
                }
            }
            handles
        })
    };
    let mut storm_handles = Vec::new();
    let mut heavy_handles = Vec::new();
    let mut light_handles = Vec::new();
    for rank in &ranks {
        storm_handles.push(submit(rank, 100, STORM_COLLS, STORM_INVOCATIONS));
        heavy_handles.push(submit(rank, 200, JOB_COLLS, JOB_INVOCATIONS));
        light_handles.push(submit(rank, 300, JOB_COLLS, JOB_INVOCATIONS));
    }
    let heavy_handles: Vec<_> = heavy_handles
        .into_iter()
        .flat_map(|j| j.join().unwrap())
        .collect();
    let light_handles: Vec<_> = light_handles
        .into_iter()
        .flat_map(|j| j.join().unwrap())
        .collect();
    let storm_handles: Vec<_> = storm_handles
        .into_iter()
        .flat_map(|j| j.join().unwrap())
        .collect();

    // The moment the weight-2 tenant drains, snapshot the weight-1 twin.
    for h in &heavy_handles {
        assert!(
            h.wait_for_timeout(1, Duration::from_secs(180)),
            "heavy tenant wedged under the storm"
        );
    }
    let total = (JOB_COLLS as usize * JOB_INVOCATIONS) as u64;
    let stats = ranks[0].tenant_stats();
    let done = |id| {
        stats
            .iter()
            .find(|s| s.tenant == id)
            .map(|s| s.completed)
            .unwrap_or(0)
    };
    let heavy_done = done(heavy.id());
    let light_done = done(light.id());
    assert_eq!(heavy_done, total, "every heavy CQE published on rank 0");
    assert!(
        light_done >= total / 20,
        "the light tenant must not starve: {light_done}/{total}"
    );
    assert!(
        light_done <= heavy_done * 3 / 4,
        "weight 2 should finish well ahead of weight 1: \
         heavy {heavy_done}, light {light_done}"
    );

    // Fairness never costs completeness: everything drains.
    for h in light_handles.iter().chain(storm_handles.iter()) {
        assert!(
            h.wait_for_timeout(1, Duration::from_secs(180)),
            "a tenant wedged under the storm"
        );
    }
    for rank in &ranks {
        assert!(rank.collective_errors().is_empty());
        for s in rank.tenant_stats() {
            assert_eq!(s.submitted, s.completed, "{}: unbalanced ledger", s.tenant);
            assert_eq!(s.outstanding, 0, "{}: leaked outstanding", s.tenant);
        }
        rank.destroy();
    }
}

/// Per-tenant counters flow into the telemetry snapshot (satellite: the
/// tenant-depth accessor is part of the observable surface).
#[test]
fn telemetry_snapshot_carries_per_tenant_counters() {
    let domain = DfcclDomain::flat_for_testing(2);
    let tenant = domain.tenant(TenantQuota::default().with_weight(3));
    let rank0 = domain.init_rank(GpuId(0)).unwrap();
    let rank1 = domain.init_rank(GpuId(1)).unwrap();
    for rank in [&rank0, &rank1] {
        rank.register_all_reduce_for(&tenant, 50, 8, DataType::F32, ReduceOp::Sum, devices2(), 0)
            .unwrap();
    }
    let h0 = rank0
        .run_awaitable(50, DeviceBuffer::zeroed(32), DeviceBuffer::zeroed(32))
        .unwrap();
    let h1 = rank1
        .run_awaitable(50, DeviceBuffer::zeroed(32), DeviceBuffer::zeroed(32))
        .unwrap();
    assert!(h0.wait_for_timeout(1, Duration::from_secs(30)));
    assert!(h1.wait_for_timeout(1, Duration::from_secs(30)));
    let snap = rank0.telemetry();
    let row = snap
        .tenants
        .iter()
        .find(|s| s.tenant == tenant.id())
        .expect("the tenant appears in the snapshot");
    assert_eq!(row.weight, 3);
    assert_eq!(row.registered, 1);
    assert_eq!(row.submitted, 1);
    assert_eq!(row.completed, 1);
    let rendered = format!("{snap}");
    assert!(
        rendered.contains(&format!("{} (w3)", tenant.id())),
        "snapshot display lists the tenant: {rendered}"
    );
    rank0.destroy();
    rank1.destroy();
}
