//! Cross-algorithm integration tests: deadlock freedom under minimal
//! connector capacity, bit-identical results across plan shapes, and the
//! latency/bandwidth crossover between ring and tree schedules.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dfccl_collectives::{
    algorithm, run_plan_blocking, AlgorithmKind, CollectiveDescriptor, CollectiveKind, DataType,
    DeviceBuffer, ReduceOp,
};
use dfccl_transport::{Communicator, CommunicatorId, LinkModel, Topology};
use gpu_sim::GpuId;

fn gpus(n: usize) -> Vec<GpuId> {
    (0..n).map(GpuId).collect()
}

/// Run `desc` with `algo` over `topo`, one thread per rank, with
/// `connector_capacity` chunk slots per connector, striped across `channels`
/// parallel connectors per edge. Panics if any rank fails or the collective
/// does not finish within the deadline.
#[allow(clippy::too_many_arguments)]
fn run_striped(
    desc: &CollectiveDescriptor,
    algo: AlgorithmKind,
    topo: &Topology,
    link: &LinkModel,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    connector_capacity: usize,
    channels: usize,
) -> Vec<Vec<f32>> {
    let n = desc.num_ranks();
    let topo_arc = Arc::new(topo.clone());
    let comm = Communicator::new(
        CommunicatorId(0),
        desc.devices.clone(),
        &topo_arc,
        &Arc::new(link.clone()),
        connector_capacity,
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut joins = Vec::new();
    for (rank, input) in inputs.iter().enumerate() {
        let desc = desc.clone();
        let input = input.clone();
        let plan = algorithm(algo)
            .build_plan_striped(&desc, rank, chunk_elems, channels, topo)
            .unwrap();
        plan.validate(rank, n).unwrap();
        let channels = comm
            .channels(rank, plan.send_edges(), plan.recv_edges())
            .unwrap();
        joins.push(std::thread::spawn(move || {
            let send = DeviceBuffer::from_f32(&input);
            let recv = DeviceBuffer::zeroed(desc.recv_bytes(rank).max(4));
            let done = run_plan_blocking(
                7,
                &plan.steps,
                &channels,
                desc.dtype,
                desc.op,
                &send,
                &recv,
                &|| Instant::now() > deadline,
            )
            .unwrap();
            assert!(done, "rank {rank} hit the deadlock deadline");
            recv.to_f32_vec()
        }));
    }
    joins.into_iter().map(|j| j.join().unwrap()).collect()
}

/// The unstriped (single-channel) variant of [`run_striped`].
fn run(
    desc: &CollectiveDescriptor,
    algo: AlgorithmKind,
    topo: &Topology,
    link: &LinkModel,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    connector_capacity: usize,
) -> Vec<Vec<f32>> {
    run_striped(
        desc,
        algo,
        topo,
        link,
        inputs,
        chunk_elems,
        connector_capacity,
        1,
    )
}

fn descriptor_for(kind: CollectiveKind, count: usize, n: usize) -> CollectiveDescriptor {
    match kind {
        CollectiveKind::AllReduce => {
            CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, gpus(n))
        }
        CollectiveKind::AllGather => {
            CollectiveDescriptor::all_gather(count, DataType::F32, gpus(n))
        }
        CollectiveKind::ReduceScatter => {
            CollectiveDescriptor::reduce_scatter(count, DataType::F32, ReduceOp::Sum, gpus(n))
        }
        CollectiveKind::Reduce => {
            CollectiveDescriptor::reduce(count, DataType::F32, ReduceOp::Sum, n - 1, gpus(n))
        }
        CollectiveKind::Broadcast => {
            CollectiveDescriptor::broadcast(count, DataType::F32, n - 1, gpus(n))
        }
        CollectiveKind::AllToAll => CollectiveDescriptor::all_to_all(count, DataType::F32, gpus(n)),
        CollectiveKind::SendRecv => {
            CollectiveDescriptor::send_recv(count, DataType::F32, GpuId(0), GpuId(1))
        }
    }
}

/// Integer-valued inputs: every reduction association is exact in f32, so
/// results must be bit-identical across algorithms.
fn inputs_for(desc: &CollectiveDescriptor) -> Vec<Vec<f32>> {
    (0..desc.num_ranks())
        .map(|r| {
            (0..desc.send_elems(r))
                .map(|i| ((r * 31 + i * 7) % 101) as f32)
                .collect()
        })
        .collect()
}

/// The multi-node splits of `n` the hierarchical algorithm can run on.
fn hierarchical_splits(n: usize) -> Vec<Topology> {
    (2..=n)
        .filter(|d| n.is_multiple_of(*d))
        .map(|d| Topology::uniform_cluster(d, n / d))
        .collect()
}

#[test]
fn every_algorithm_is_deadlock_free_with_one_slot_connectors() {
    // The generalization of the chunk-major regression test to the plan IR:
    // every algorithm x collective kind x rank count (including non-powers of
    // two) x chunk size completes with *1-slot* connectors — the minimal
    // capacity, where any ordering mistake wedges immediately.
    let link = LinkModel::zero_cost();
    let count = 17; // odd: uneven slices, partial chunks
    for n in 2..=8usize {
        for chunk_elems in [1usize, 3, 1024] {
            // Ring schedules every classic kind; pairwise schedules the
            // dense-mesh kinds (all-to-all, send/recv).
            for kind in CollectiveKind::ALL {
                let desc = descriptor_for(kind, count, n);
                let algo = match kind {
                    CollectiveKind::AllToAll | CollectiveKind::SendRecv => AlgorithmKind::Pairwise,
                    _ => AlgorithmKind::Ring,
                };
                let topo = Topology::flat(desc.num_ranks());
                run(
                    &desc,
                    algo,
                    &topo,
                    &link,
                    &inputs_for(&desc),
                    chunk_elems,
                    1,
                );
            }
            // Tree schedules all-reduce and broadcast.
            for kind in [CollectiveKind::AllReduce, CollectiveKind::Broadcast] {
                let desc = descriptor_for(kind, count, n);
                let topo = Topology::flat(n);
                run(
                    &desc,
                    AlgorithmKind::DoubleBinaryTree,
                    &topo,
                    &link,
                    &inputs_for(&desc),
                    chunk_elems,
                    1,
                );
            }
            // Hierarchical schedules all-reduce over every uniform split.
            for topo in hierarchical_splits(n) {
                let desc = descriptor_for(CollectiveKind::AllReduce, count, n);
                run(
                    &desc,
                    AlgorithmKind::Hierarchical,
                    &topo,
                    &link,
                    &inputs_for(&desc),
                    chunk_elems,
                    1,
                );
            }
        }
    }
}

#[test]
fn striped_channels_complete_at_capacity_one_and_match_the_unstriped_oracle() {
    // The tentpole's property test: every algorithm family x collective kind
    // x rank count 2-8 x channel count K in {1, 2, 3} completes with 1-slot
    // connectors and produces results bit-identical to the K = 1 plan. The
    // chunk size (3) is far below the per-slice element counts, so every
    // schedule genuinely stripes across all K channels, and capacity 1 means
    // any per-channel ordering or pairing mistake wedges immediately.
    let link = LinkModel::zero_cost();
    let count = 17; // odd: uneven slices, partial chunks
    let chunk_elems = 3;
    for n in 2..=8usize {
        // (descriptor kind, algorithm, topology) jobs for this rank count.
        let mut jobs: Vec<(CollectiveKind, AlgorithmKind, Topology)> = Vec::new();
        for kind in CollectiveKind::ALL {
            let algo = match kind {
                CollectiveKind::AllToAll | CollectiveKind::SendRecv => AlgorithmKind::Pairwise,
                _ => AlgorithmKind::Ring,
            };
            let ranks = if kind == CollectiveKind::SendRecv {
                2
            } else {
                n
            };
            jobs.push((kind, algo, Topology::flat(ranks)));
        }
        for kind in [CollectiveKind::AllReduce, CollectiveKind::Broadcast] {
            jobs.push((kind, AlgorithmKind::DoubleBinaryTree, Topology::flat(n)));
        }
        for topo in hierarchical_splits(n) {
            jobs.push((CollectiveKind::AllReduce, AlgorithmKind::Hierarchical, topo));
        }
        for (kind, algo, topo) in jobs {
            let ranks = if kind == CollectiveKind::SendRecv {
                2
            } else {
                n
            };
            let desc = descriptor_for(kind, count, ranks);
            let inputs = inputs_for(&desc);
            let oracle = run_striped(&desc, algo, &topo, &link, &inputs, chunk_elems, 1, 1);
            for k in [2usize, 3] {
                let striped = run_striped(&desc, algo, &topo, &link, &inputs, chunk_elems, 1, k);
                assert_eq!(
                    striped, oracle,
                    "{algo} {kind} n={n} K={k} diverges from the K=1 oracle"
                );
            }
        }
    }
}

#[test]
fn tree_and_hierarchical_all_reduce_match_ring_bit_for_bit() {
    let link = LinkModel::zero_cost();
    for n in [2usize, 4, 6, 8] {
        let count = 41;
        let desc = descriptor_for(CollectiveKind::AllReduce, count, n);
        let inputs = inputs_for(&desc);
        let flat = Topology::flat(n);
        let ring = run(&desc, AlgorithmKind::Ring, &flat, &link, &inputs, 8, 4);
        let tree = run(
            &desc,
            AlgorithmKind::DoubleBinaryTree,
            &flat,
            &link,
            &inputs,
            8,
            4,
        );
        assert_eq!(ring, tree, "tree vs ring mismatch at n={n}");
        for topo in hierarchical_splits(n) {
            let hier = run(
                &desc,
                AlgorithmKind::Hierarchical,
                &topo,
                &link,
                &inputs,
                8,
                4,
            );
            assert_eq!(ring, hier, "hierarchical vs ring mismatch at n={n}");
        }
        // Sanity: the shared result is the actual sum.
        let expected: Vec<f32> = (0..count)
            .map(|i| inputs.iter().map(|inp| inp[i]).sum())
            .collect();
        for out in &ring {
            assert_eq!(out, &expected);
        }
    }
}

#[test]
fn tree_broadcast_matches_ring_bit_for_bit() {
    let link = LinkModel::zero_cost();
    for n in [3usize, 5, 8] {
        let desc = descriptor_for(CollectiveKind::Broadcast, 29, n);
        let inputs = inputs_for(&desc);
        let flat = Topology::flat(n);
        let ring = run(&desc, AlgorithmKind::Ring, &flat, &link, &inputs, 4, 4);
        let tree = run(
            &desc,
            AlgorithmKind::DoubleBinaryTree,
            &flat,
            &link,
            &inputs,
            4,
            4,
        );
        assert_eq!(ring, tree, "broadcast mismatch at n={n}");
    }
}

/// Modelled completion time of `desc` under `algo` over the Table 2 link
/// costs — deterministic, so the crossover assertions cannot flake on
/// machines with fewer cores than ranks. Shares the bench harness's helper,
/// so the asserted ordering and the published sweep measure the same thing.
fn estimate_us(desc: &CollectiveDescriptor, algo: AlgorithmKind, topo: &Topology) -> f64 {
    dfccl_bench::modelled_completion_us(desc, algo, topo).expect("algorithm supports descriptor")
}

#[test]
fn tree_beats_ring_on_small_payloads_and_ring_wins_large() {
    // The Fig. 8-style crossover the selector encodes: a small all-reduce is
    // hop-count-bound (tree: O(log n) depth; ring: 2(n-1) pipeline stages),
    // a large one is byte-volume-bound (ring moves 2(n-1)/n of the buffer
    // per rank; the tree re-sends whole halves at every level).
    let n = 8;
    let flat = Topology::flat(n);

    let small = descriptor_for(CollectiveKind::AllReduce, 64, n);
    let ring_small = estimate_us(&small, AlgorithmKind::Ring, &flat);
    let tree_small = estimate_us(&small, AlgorithmKind::DoubleBinaryTree, &flat);

    let large = descriptor_for(CollectiveKind::AllReduce, 1 << 20, n);
    let ring_large = estimate_us(&large, AlgorithmKind::Ring, &flat);
    let tree_large = estimate_us(&large, AlgorithmKind::DoubleBinaryTree, &flat);

    assert!(
        tree_small < ring_small,
        "tree must win small payloads: tree {tree_small}us vs ring {ring_small}us"
    );
    assert!(
        ring_large < tree_large,
        "ring must win large payloads: ring {ring_large}us vs tree {tree_large}us"
    );
}

/// The sequential oracle for an all-to-all: rank `r` receives everyone's
/// slice `r`, concatenated in source-rank order. Pure data movement, so the
/// mesh schedule must match it bit for bit.
fn alltoall_oracle(inputs: &[Vec<f32>], count: usize, rank: usize) -> Vec<f32> {
    inputs
        .iter()
        .flat_map(|input| input[rank * count..(rank + 1) * count].to_vec())
        .collect()
}

#[test]
fn all_to_all_completes_at_capacity_one_and_matches_the_oracle() {
    // The dense-mesh property test: every rank count (including non-powers of
    // two) x chunk size completes with *1-slot* connectors — n(n-1) directed
    // edges live at once, so any pairing or ordering mistake wedges
    // immediately — and the result is bit-identical to the sequential oracle.
    let link = LinkModel::zero_cost();
    let count = 13; // odd: partial chunks at every sweep size
    for n in 2..=8usize {
        for chunk_elems in [1usize, 3, 1024] {
            let desc = descriptor_for(CollectiveKind::AllToAll, count, n);
            let inputs = inputs_for(&desc);
            let topo = Topology::flat(n);
            let outputs = run(
                &desc,
                AlgorithmKind::Pairwise,
                &topo,
                &link,
                &inputs,
                chunk_elems,
                1,
            );
            for (rank, out) in outputs.iter().enumerate() {
                assert_eq!(
                    out,
                    &alltoall_oracle(&inputs, count, rank),
                    "n={n} chunk={chunk_elems} rank={rank}"
                );
            }
        }
    }
}

#[test]
fn send_recv_completes_at_capacity_one_and_delivers_exactly() {
    let link = LinkModel::zero_cost();
    for chunk_elems in [1usize, 4, 64] {
        let desc = descriptor_for(CollectiveKind::SendRecv, 23, 2);
        let inputs = inputs_for(&desc);
        let topo = Topology::flat(2);
        let outputs = run(
            &desc,
            AlgorithmKind::Pairwise,
            &topo,
            &link,
            &inputs,
            chunk_elems,
            1,
        );
        assert_eq!(outputs[1], inputs[0], "chunk={chunk_elems}");
    }
}

#[test]
fn preemption_storm_suspends_and_resumes_dense_mesh_plans_mid_flight() {
    // The tentpole's contract assertion: the daemon needed *no executor or
    // scheduler changes* for all-to-all, because preemption safety is a
    // property of the single-chunk non-blocking primitive contract, not of
    // the schedule's shape. A tiny fixed spin threshold (4 polls) plus 1-slot
    // connectors forces constant mid-plan suspend/resume of the dense-mesh
    // plans; the transposition must still be exact and preemptions must
    // actually have happened.
    use dfccl::{DfcclConfig, DfcclDomain};
    use dfccl_transport::LinkModel as TLinkModel;
    use gpu_sim::GpuSpec;
    use std::time::Duration as StdDuration;

    let n = 4;
    let count = 64; // per-peer slice; chunk 8 -> 8 chunks per slice
    let config = DfcclConfig {
        chunk_elems: 8,
        connector_capacity: 1,
        ..DfcclConfig::preemption_stress()
    };
    let domain = DfcclDomain::new(
        Topology::flat(n),
        TLinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        config,
    );
    let ranks: Vec<_> = (0..n)
        .map(|g| domain.init_rank(GpuId(g)).unwrap())
        .collect();
    for ctx in &ranks {
        ctx.register_all_to_all(1, count, DataType::F32, gpus(n), 0)
            .unwrap();
        assert_eq!(ctx.algorithm_of(1), Some(AlgorithmKind::Pairwise));
    }
    let inputs: Vec<Vec<f32>> = (0..n)
        .map(|r| {
            (0..count * n)
                .map(|i| ((r * 53 + i * 11) % 251) as f32)
                .collect()
        })
        .collect();
    let invocations = 3u64;
    let mut handles = Vec::new();
    let mut recvs = Vec::new();
    for _ in 0..invocations {
        for (g, ctx) in ranks.iter().enumerate() {
            let send = DeviceBuffer::from_f32(&inputs[g]);
            let recv = DeviceBuffer::zeroed(count * n * 4);
            recvs.push((g, recv.clone()));
            handles.push(ctx.run_awaitable(1, send, recv).unwrap());
        }
    }
    for h in &handles {
        assert!(
            h.wait_for_timeout(1, StdDuration::from_secs(60)),
            "preemption storm wedged an all-to-all"
        );
    }
    for (rank, recv) in &recvs {
        assert_eq!(
            recv.to_f32_vec(),
            alltoall_oracle(&inputs, count, *rank),
            "rank {rank}"
        );
    }
    let preemptions: u64 = ranks.iter().map(|c| c.stats().preemptions).sum();
    assert!(
        preemptions > 0,
        "the storm configuration must actually preempt mid-plan"
    );
    for ctx in ranks {
        assert!(ctx.collective_errors().is_empty());
        ctx.destroy();
    }
}

#[test]
fn preemption_storm_with_striped_channels_saves_and_restores_every_channel() {
    // The K > 1 preemption contract: a 4-poll spin threshold over 1-slot
    // connectors suspends striped plans mid-flight constantly, so the
    // per-channel staging slots must be saved and restored with the dynamic
    // context across every preemption. Both a dense-mesh all-to-all and a
    // ring all-reduce run striped over 3 channels; results must be exact and
    // preemptions must actually have happened.
    use dfccl::{DfcclConfig, DfcclDomain};
    use dfccl_transport::LinkModel as TLinkModel;
    use gpu_sim::GpuSpec;
    use std::time::Duration as StdDuration;

    let n = 4;
    let count = 60; // per-peer slice; chunk 4 -> 15 chunks striped over 3 channels
    let config = DfcclConfig {
        chunk_elems: 4,
        connector_capacity: 1,
        channels: 3,
        ..DfcclConfig::preemption_stress()
    };
    let domain = DfcclDomain::new(
        Topology::flat(n),
        TLinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        config,
    );
    let ranks: Vec<_> = (0..n)
        .map(|g| domain.init_rank(GpuId(g)).unwrap())
        .collect();
    for ctx in &ranks {
        ctx.register_all_to_all(1, count, DataType::F32, gpus(n), 0)
            .unwrap();
        assert_eq!(ctx.channels_of(1), Some(3), "all-to-all must stripe");
        ctx.register_all_reduce(2, count * n, DataType::F32, ReduceOp::Sum, gpus(n), 0)
            .unwrap();
        assert_eq!(ctx.channels_of(2), Some(3), "all-reduce must stripe");
    }
    let inputs: Vec<Vec<f32>> = (0..n)
        .map(|r| {
            (0..count * n)
                .map(|i| ((r * 53 + i * 11) % 251) as f32)
                .collect()
        })
        .collect();
    let invocations = 2u64;
    let mut handles = Vec::new();
    let mut a2a_recvs = Vec::new();
    let mut ar_recvs = Vec::new();
    for _ in 0..invocations {
        for (g, ctx) in ranks.iter().enumerate() {
            let recv = DeviceBuffer::zeroed(count * n * 4);
            a2a_recvs.push((g, recv.clone()));
            handles.push(
                ctx.run_awaitable(1, DeviceBuffer::from_f32(&inputs[g]), recv)
                    .unwrap(),
            );
            let recv = DeviceBuffer::zeroed(count * n * 4);
            ar_recvs.push(recv.clone());
            handles.push(
                ctx.run_awaitable(2, DeviceBuffer::from_f32(&inputs[g]), recv)
                    .unwrap(),
            );
        }
    }
    for h in &handles {
        assert!(
            h.wait_for_timeout(1, StdDuration::from_secs(60)),
            "striped preemption storm wedged a collective"
        );
    }
    for (rank, recv) in &a2a_recvs {
        assert_eq!(
            recv.to_f32_vec(),
            alltoall_oracle(&inputs, count, *rank),
            "all-to-all rank {rank}"
        );
    }
    let expected_sum: Vec<f32> = (0..count * n)
        .map(|i| (0..n).map(|r| inputs[r][i]).sum())
        .collect();
    for recv in &ar_recvs {
        assert_eq!(recv.to_f32_vec(), expected_sum, "striped all-reduce sum");
    }
    let preemptions: u64 = ranks.iter().map(|c| c.stats().preemptions).sum();
    assert!(
        preemptions > 0,
        "the storm configuration must actually preempt mid-plan"
    );
    for ctx in ranks {
        assert!(ctx.collective_errors().is_empty());
        ctx.destroy();
    }
}

#[test]
fn hierarchical_beats_flat_ring_across_nodes_on_large_payloads() {
    // Two eight-GPU servers: the flat ring crosses the slow inter-node fabric
    // with the full 2(n-1)/n volume; the hierarchical schedule confines all
    // but 1/k-th of it to the intra-node links.
    let n = 16;
    let topo = Topology::two_eight_gpu_servers();
    let desc = descriptor_for(CollectiveKind::AllReduce, 1 << 20, n);
    let ring = estimate_us(&desc, AlgorithmKind::Ring, &topo);
    let hier = estimate_us(&desc, AlgorithmKind::Hierarchical, &topo);
    assert!(
        hier < ring,
        "hierarchical must win multi-node large payloads: hier {hier}us vs ring {ring}us"
    );
}
