//! Concurrent-communicator stress suite: overlapping device groups submit
//! disordered all-to-all + all-reduce mixes under residency and connector
//! pressure. DFCCL must complete every seeded round; the NCCL-like baseline
//! wedges on the same mix and is caught by the watchdog.
//!
//! Seeds are derived deterministically, so any failing round reproduces by
//! seed alone. CI's soak job widens the sweep via `DFCCL_STRESS_SEEDS`
//! (default 5 seeds locally).

use std::sync::Arc;
use std::time::Duration;

use dfccl_repro::baseline::{wait_all_or_deadlock, NcclDomain};
use dfccl_repro::collectives::{
    AlgorithmKind, CollectiveDescriptor, DataType, DeviceBuffer, ReduceOp,
};
use dfccl_repro::dfccl::{DfcclConfig, DfcclDomain, DfcclError, SpinPolicy, TenantQuota};
use dfccl_repro::gpu_sim::{GpuId, GpuSpec, StreamId};
use dfccl_repro::transport::{FaultSpec, LinkModel, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gpus(ids: &[usize]) -> Vec<GpuId> {
    ids.iter().map(|&i| GpuId(i)).collect()
}

/// Number of seeds to sweep: `DFCCL_STRESS_SEEDS` (the CI soak job raises
/// it), defaulting to a quick local sweep.
fn seed_count() -> u64 {
    std::env::var("DFCCL_STRESS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

/// The stress mix over 4 GPUs: a dense-mesh all-to-all spanning everyone,
/// plus all-reduces over three mutually overlapping device groups. Every GPU
/// belongs to at least two communicators.
fn stress_mix() -> Vec<(u64, CollectiveDescriptor)> {
    vec![
        (
            1,
            CollectiveDescriptor::all_to_all(24, DataType::F32, gpus(&[0, 1, 2, 3])),
        ),
        (
            2,
            CollectiveDescriptor::all_reduce(96, DataType::F32, ReduceOp::Sum, gpus(&[0, 1, 2, 3])),
        ),
        (
            3,
            CollectiveDescriptor::all_reduce(64, DataType::F32, ReduceOp::Sum, gpus(&[0, 1])),
        ),
        (
            4,
            CollectiveDescriptor::all_reduce(64, DataType::F32, ReduceOp::Sum, gpus(&[2, 3])),
        ),
        (
            5,
            CollectiveDescriptor::all_reduce(48, DataType::F32, ReduceOp::Sum, gpus(&[1, 2])),
        ),
    ]
}

/// The per-GPU submission order for one seeded round: the GPU's collectives,
/// shuffled by a seed-derived RNG. Deterministic in (seed, gpu).
fn disordered_order(mix: &[(u64, CollectiveDescriptor)], gpu: GpuId, seed: u64) -> Vec<u64> {
    let mut order: Vec<u64> = mix
        .iter()
        .filter(|(_, d)| d.devices.contains(&gpu))
        .map(|(id, _)| *id)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ ((gpu.0 as u64) << 40));
    // Fisher-Yates: a full shuffle, not just adjacent swaps — maximal disorder.
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    order
}

/// One DFCCL round: every GPU submits its shuffled mix; everything must
/// complete under heavy preemption (tiny spin threshold) and minimal
/// connector capacity, and the all-to-all must still be exact.
fn dfccl_round(seed: u64) {
    let mix = stress_mix();
    let config = DfcclConfig {
        chunk_elems: 8,
        connector_capacity: 1,
        spin: SpinPolicy::Fixed { threshold: 16 },
        ..DfcclConfig::for_testing()
    };
    let domain = DfcclDomain::new(
        Topology::flat(4),
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        config,
    );
    let ranks: Vec<_> = (0..4)
        .map(|g| Arc::new(domain.init_rank(GpuId(g)).unwrap()))
        .collect();
    for rank in &ranks {
        for (id, desc) in &mix {
            if desc.devices.contains(&rank.gpu()) {
                rank.register(*id, desc.clone()).unwrap();
            }
        }
    }
    let a2a_count = 24usize;
    let a2a_inputs: Vec<Vec<f32>> = (0..4)
        .map(|r| {
            (0..a2a_count * 4)
                .map(|i| ((seed as usize + r * 37 + i * 5) % 199) as f32)
                .collect()
        })
        .collect();
    let mix = Arc::new(mix);
    let a2a_inputs = Arc::new(a2a_inputs);
    let mut joins = Vec::new();
    for rank in &ranks {
        let rank = Arc::clone(rank);
        let mix = Arc::clone(&mix);
        let a2a_inputs = Arc::clone(&a2a_inputs);
        joins.push(std::thread::spawn(move || {
            let gpu = rank.gpu();
            let mut handles = Vec::new();
            let mut a2a_out = None;
            for id in disordered_order(&mix, gpu, seed) {
                let desc = &mix.iter().find(|(i, _)| *i == id).unwrap().1;
                let rank_idx = desc.devices.iter().position(|&d| d == gpu).unwrap();
                let (send, recv) = if id == 1 {
                    let recv = DeviceBuffer::zeroed(desc.recv_bytes(rank_idx));
                    a2a_out = Some(recv.clone());
                    (DeviceBuffer::from_f32(&a2a_inputs[gpu.0]), recv)
                } else {
                    (
                        DeviceBuffer::zeroed(desc.send_bytes(rank_idx)),
                        DeviceBuffer::zeroed(desc.recv_bytes(rank_idx).max(4)),
                    )
                };
                handles.push(rank.run_awaitable(id, send, recv).unwrap());
            }
            for h in handles {
                assert!(
                    h.wait_for_timeout(1, Duration::from_secs(60)),
                    "seed {seed}: gpu {gpu} wedged"
                );
            }
            // The all-to-all transposition must be exact despite the storm.
            let out = a2a_out.expect("every gpu runs the all-to-all").to_f32_vec();
            let expected: Vec<f32> = a2a_inputs
                .iter()
                .flat_map(|inp| inp[gpu.0 * a2a_count..(gpu.0 + 1) * a2a_count].to_vec())
                .collect();
            assert_eq!(
                out, expected,
                "seed {seed}: gpu {gpu} got a wrong transpose"
            );
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    for rank in &ranks {
        assert!(
            rank.collective_errors().is_empty(),
            "seed {seed}: collective errors"
        );
        rank.destroy();
    }
}

#[test]
fn dfccl_completes_every_seeded_disordered_mix() {
    for seed in 0..seed_count() {
        dfccl_round(seed);
    }
}

/// The eight overlapping device groups the multi-tenant round cycles through:
/// every GPU appears in five groups, so communicators from different tenants
/// constantly contend for the same links.
fn tenant_device_groups() -> Vec<Vec<GpuId>> {
    vec![
        gpus(&[0, 1]),
        gpus(&[1, 2]),
        gpus(&[2, 3]),
        gpus(&[0, 3]),
        gpus(&[0, 2]),
        gpus(&[1, 3]),
        gpus(&[0, 1, 2]),
        gpus(&[0, 1, 2, 3]),
    ]
}

/// One multi-tenant service-mode round: 8 tenants × 26 all-reduces = 208
/// communicators over the overlapping groups, mixed priorities, every GPU
/// submitting its share in seed-disordered order. Every tenant must complete
/// and every tenant's per-rank ledger must balance.
fn multi_tenant_round(seed: u64) {
    const TENANTS: u64 = 8;
    const COLLS_PER_TENANT: u64 = 26;
    let config = DfcclConfig {
        chunk_elems: 8,
        connector_capacity: 1,
        spin: SpinPolicy::Fixed { threshold: 16 },
        tenant_quantum: 1,
        ..DfcclConfig::for_testing()
    };
    let domain = DfcclDomain::new(
        Topology::flat(4),
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        config,
    );
    let handles: Vec<_> = (0..TENANTS)
        .map(|t| domain.tenant(TenantQuota::default().with_weight((t % 3 + 1) as u32)))
        .collect();
    let groups = tenant_device_groups();
    // coll id → (tenant index, descriptor); ids are dense so the disorder
    // shuffle can reuse `disordered_order`.
    let mix: Vec<(u64, CollectiveDescriptor)> = (0..TENANTS * COLLS_PER_TENANT)
        .map(|i| {
            let devices = groups[((i / TENANTS) % groups.len() as u64) as usize].clone();
            let count = 8 * (1 + (i % 3) as usize);
            let priority = (i % 5) as i32 - 2;
            let desc =
                CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, devices)
                    .with_priority(priority);
            (1000 + i, desc)
        })
        .collect();
    let ranks: Vec<_> = (0..4)
        .map(|g| Arc::new(domain.init_rank(GpuId(g)).unwrap()))
        .collect();
    for rank in &ranks {
        for (id, desc) in &mix {
            if desc.devices.contains(&rank.gpu()) {
                let tenant = &handles[((id - 1000) % TENANTS) as usize];
                rank.register_for(tenant, *id, desc.clone()).unwrap();
            }
        }
    }
    let mix = Arc::new(mix);
    let mut joins = Vec::new();
    for rank in &ranks {
        let rank = Arc::clone(rank);
        let mix = Arc::clone(&mix);
        joins.push(std::thread::spawn(move || {
            let gpu = rank.gpu();
            let mut waits = Vec::new();
            for id in disordered_order(&mix, gpu, seed) {
                let desc = &mix.iter().find(|(i, _)| *i == id).unwrap().1;
                let rank_idx = desc.devices.iter().position(|&d| d == gpu).unwrap();
                loop {
                    match rank.run_awaitable(
                        id,
                        DeviceBuffer::zeroed(desc.send_bytes(rank_idx)),
                        DeviceBuffer::zeroed(desc.recv_bytes(rank_idx).max(4)),
                    ) {
                        Ok(h) => {
                            waits.push(h);
                            break;
                        }
                        Err(DfcclError::SubmissionQueueFull) => {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                        Err(e) => panic!("seed {seed}: gpu {gpu} submit failed: {e:?}"),
                    }
                }
            }
            for h in waits {
                assert!(
                    h.wait_for_timeout(1, Duration::from_secs(120)),
                    "seed {seed}: gpu {gpu} wedged in the multi-tenant round"
                );
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    for rank in &ranks {
        assert!(
            rank.collective_errors().is_empty(),
            "seed {seed}: collective errors"
        );
        let stats = rank.tenant_stats();
        for handle in &handles {
            let s = stats
                .iter()
                .find(|s| s.tenant == handle.id())
                .unwrap_or_else(|| panic!("seed {seed}: {} missing from stats", handle.id()));
            assert_eq!(
                s.submitted,
                s.completed,
                "seed {seed}: {} ledger unbalanced on {:?}",
                handle.id(),
                rank.gpu()
            );
            assert_eq!(s.outstanding, 0);
            assert_eq!(s.failed, 0);
            assert!(s.completed > 0, "seed {seed}: {} ran nothing", handle.id());
        }
        rank.destroy();
    }
}

#[test]
fn multi_tenant_mixes_complete_with_balanced_ledgers() {
    // A full sweep is the soak job's business (`DFCCL_STRESS_SEEDS`); the
    // default run keeps the round count small because each round carries 208
    // communicators.
    for seed in 0..seed_count().min(3) {
        multi_tenant_round(seed);
    }
}

#[test]
fn disordered_orders_are_seed_stable() {
    // Reproducibility contract: a failing seed can be replayed exactly.
    let mix = stress_mix();
    for gpu in 0..4 {
        for seed in 0..8 {
            assert_eq!(
                disordered_order(&mix, GpuId(gpu), seed),
                disordered_order(&mix, GpuId(gpu), seed)
            );
        }
    }
    // And seeds genuinely vary the order somewhere.
    let varied = (0..8u64)
        .any(|s| disordered_order(&mix, GpuId(0), s) != disordered_order(&mix, GpuId(0), 0));
    assert!(varied, "the shuffle never produced a different order");
}

#[test]
fn nccl_like_baseline_wedges_on_the_disordered_mix_and_the_watchdog_catches_it() {
    // The same ingredients — an all-to-all and an all-reduce over the same
    // devices, opposite submission orders, one residency slot per GPU — wedge
    // the blocking baseline: each GPU's resident kernel busy-waits for a peer
    // kernel that is stuck behind the other GPU's resident kernel (Fig. 1(c),
    // resource depletion, now with a dense-mesh collective in the cycle).
    let domain = NcclDomain::flat_for_testing(2, 1);
    let ranks: Vec<_> = (0..2)
        .map(|g| domain.init_rank(GpuId(g)).unwrap())
        .collect();
    let a2a = CollectiveDescriptor::all_to_all(32, DataType::F32, gpus(&[0, 1]));
    let ar = CollectiveDescriptor::all_reduce(64, DataType::F32, ReduceOp::Sum, gpus(&[0, 1]));
    for r in &ranks {
        r.register(1, a2a.clone()).unwrap();
        r.register(2, ar.clone()).unwrap();
    }
    let order = [vec![1u64, 2u64], vec![2u64, 1u64]];
    let mut handles = Vec::new();
    for (g, r) in ranks.iter().enumerate() {
        for &coll in &order[g] {
            let desc = if coll == 1 { &a2a } else { &ar };
            let send = DeviceBuffer::zeroed(desc.send_bytes(g));
            let recv = DeviceBuffer::zeroed(desc.recv_bytes(g));
            handles.push(
                r.launch_collective(coll, StreamId(coll as usize), send, recv)
                    .unwrap(),
            );
        }
    }
    let outcome = wait_all_or_deadlock(&handles, &domain.engines(), Duration::from_secs(2));
    assert!(
        outcome.is_deadlock(),
        "the disordered all-to-all + all-reduce mix must wedge the baseline"
    );
    domain.shutdown();
}

/// Run one all-reduce over `devices` on the given ranks and assert it is
/// bit-exact. `base` seeds the integer-valued inputs so rounds differ.
fn exact_all_reduce(ranks: &[&dfccl_repro::dfccl::RankCtx], coll: u64, count: usize, base: usize) {
    let n = ranks.len();
    let inputs: Vec<Vec<f32>> = (0..n)
        .map(|r| {
            (0..count)
                .map(|i| ((base + r * 41 + i * 3) % 151) as f32)
                .collect()
        })
        .collect();
    let mut handles = Vec::new();
    let mut recvs = Vec::new();
    for (r, rank) in ranks.iter().enumerate() {
        let recv = DeviceBuffer::zeroed(count * 4);
        recvs.push(recv.clone());
        handles.push(
            rank.run_awaitable(coll, DeviceBuffer::from_f32(&inputs[r]), recv)
                .unwrap(),
        );
    }
    for h in &handles {
        assert!(
            h.wait_for_timeout(1, Duration::from_secs(60)),
            "collective {coll} wedged"
        );
    }
    let expected: Vec<f32> = (0..count)
        .map(|i| (0..n).map(|r| inputs[r][i]).sum())
        .collect();
    for (r, recv) in recvs.iter().enumerate() {
        assert_eq!(recv.to_f32_vec(), expected, "collective {coll}, rank {r}");
    }
}

/// Elastic membership round: shrink the domain by one GPU between
/// iterations, run bit-exact on the survivors, then grow it back and run
/// bit-exact on the restored set. A removal attempted while work is still
/// in flight must be refused with `MembershipBusy`, leaving no partial
/// state behind.
#[test]
fn elastic_membership_shrinks_and_grows_bit_exact() {
    let config = DfcclConfig {
        chunk_elems: 8,
        connector_capacity: 1,
        spin: SpinPolicy::Fixed { threshold: 16 },
        ..DfcclConfig::for_testing()
    };
    let domain = DfcclDomain::new(
        Topology::flat(4),
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        config,
    );
    let devices = gpus(&[0, 1, 2, 3]);
    let count = 64usize;
    let ranks: Vec<_> = (0..4)
        .map(|g| domain.init_rank(GpuId(g)).unwrap())
        .collect();
    for rank in &ranks {
        rank.register_all_reduce(1, count, DataType::F32, ReduceOp::Sum, devices.clone(), 0)
            .unwrap();
    }

    // Phase 1: a removal mid-collective must be refused. A dead edge holds
    // the all-reduce in flight deterministically.
    let victim = domain
        .edge_samples()
        .iter()
        .find(|s| s.coll_id == Some(1))
        .expect("registered collective has edges")
        .edge;
    let injector = domain.fault_injector();
    injector.script(victim, FaultSpec::dead());
    let inputs: Vec<Vec<f32>> = (0..4)
        .map(|r| {
            (0..count)
                .map(|i| ((r * 19 + i * 7) % 113) as f32)
                .collect()
        })
        .collect();
    let mut handles = Vec::new();
    let mut recvs = Vec::new();
    for (r, rank) in ranks.iter().enumerate() {
        let recv = DeviceBuffer::zeroed(count * 4);
        recvs.push(recv.clone());
        handles.push(
            rank.run_awaitable(1, DeviceBuffer::from_f32(&inputs[r]), recv)
                .unwrap(),
        );
    }
    std::thread::sleep(Duration::from_millis(30));
    assert!(
        matches!(
            domain.remove_rank(GpuId(3)),
            Err(DfcclError::MembershipBusy { .. })
        ),
        "removal with work in flight must be refused"
    );
    // Heal only the victim edge and let the round drain bit-exact.
    injector.clear_edge(victim);
    for h in &handles {
        assert!(h.wait_for_timeout(1, Duration::from_secs(60)));
    }
    let expected: Vec<f32> = (0..count)
        .map(|i| (0..4).map(|r| inputs[r][i]).sum())
        .collect();
    for recv in &recvs {
        assert_eq!(recv.to_f32_vec(), expected);
    }

    // Phase 2: shrink. Every registration touching GPU 3 is dropped on
    // every rank, and the GPU leaves the membership.
    assert_eq!(domain.remove_rank(GpuId(3)).unwrap(), 4);
    assert_eq!(domain.members(), gpus(&[0, 1, 2]));
    assert!(matches!(
        domain.init_rank(GpuId(3)),
        Err(DfcclError::NotMember(GpuId(3)))
    ));
    assert!(matches!(
        ranks[0].register_all_reduce(9, count, DataType::F32, ReduceOp::Sum, devices.clone(), 0),
        Err(DfcclError::NotMember(GpuId(3)))
    ));
    assert!(
        ranks[0]
            .run_awaitable(
                1,
                DeviceBuffer::zeroed(count * 4),
                DeviceBuffer::zeroed(count * 4)
            )
            .is_err(),
        "the dropped registration must not be invokable"
    );
    // The shrunk domain runs bit-exact on the survivors.
    let survivors = gpus(&[0, 1, 2]);
    for rank in &ranks[..3] {
        rank.register_all_reduce(
            10,
            count,
            DataType::F32,
            ReduceOp::Sum,
            survivors.clone(),
            0,
        )
        .unwrap();
    }
    let survivor_refs: Vec<_> = ranks[..3].iter().collect();
    exact_all_reduce(&survivor_refs, 10, count, 500);

    // Phase 3: grow back. Plans and meshes over the restored GPU rebuild
    // lazily at the next registration; the restored set runs bit-exact.
    domain.add_rank(GpuId(3)).unwrap();
    assert!(matches!(
        domain.add_rank(GpuId(3)),
        Err(DfcclError::AlreadyMember(GpuId(3)))
    ));
    assert_eq!(domain.members(), devices);
    for rank in &ranks {
        rank.register_all_reduce(20, count, DataType::F32, ReduceOp::Sum, devices.clone(), 0)
            .unwrap();
    }
    let all_refs: Vec<_> = ranks.iter().collect();
    exact_all_reduce(&all_refs, 20, count, 900);

    for rank in &ranks {
        assert!(rank.collective_errors().is_empty());
        rank.destroy();
    }
}

#[test]
fn selector_routes_the_stress_mix_as_expected() {
    // Sanity on the mix itself: the all-to-all compiles to the pairwise
    // family and uses the full dense edge set; the all-reduces stay on their
    // classic families.
    let domain = DfcclDomain::flat_for_testing(4);
    let rank = domain.init_rank(GpuId(0)).unwrap();
    for (id, desc) in stress_mix() {
        if desc.devices.contains(&GpuId(0)) {
            rank.register(id, desc).unwrap();
        }
    }
    assert_eq!(rank.algorithm_of(1), Some(AlgorithmKind::Pairwise));
    assert_ne!(rank.algorithm_of(2), Some(AlgorithmKind::Pairwise));
    rank.destroy();
}
