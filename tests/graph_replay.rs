//! The graph layer's integration contract: capturing an iteration and
//! replaying it as one SQE — including the small-all-reduce fusion pass —
//! produces results bit-identical to registering and submitting the same
//! sequence individually, across every algorithm family × rank count 2–8 ×
//! channel count K ∈ {1, 2, 3} at connector capacity 1, and the contract
//! survives a preemption storm.

use std::time::Duration;

use dfccl::{DfcclConfig, DfcclDomain, RankCtx};
use dfccl_collectives::{
    AlgorithmKind, CollectiveDescriptor, CollectiveKind, DataType, DeviceBuffer, ReduceOp,
};
use dfccl_transport::{LinkModel, Topology};
use gpu_sim::{GpuId, GpuSpec};

fn gpus(n: usize) -> Vec<GpuId> {
    (0..n).map(GpuId).collect()
}

/// The recorded step: a short sequence of same-kind collectives. For
/// all-reduce the first three are below the fusion threshold and compatible,
/// so the capture coalesces them into one fused node; the fourth opts out via
/// `no_fuse` and must stay a single node.
fn step_descriptors(kind: CollectiveKind, n: usize) -> Vec<CollectiveDescriptor> {
    let make = |count: usize| -> CollectiveDescriptor {
        match kind {
            CollectiveKind::AllReduce => {
                CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, gpus(n))
            }
            CollectiveKind::AllToAll => {
                CollectiveDescriptor::all_to_all(count, DataType::F32, gpus(n))
            }
            CollectiveKind::SendRecv => {
                CollectiveDescriptor::send_recv(count, DataType::F32, GpuId(0), GpuId(1))
            }
            other => panic!("kind {other} not used by the graph property test"),
        }
    };
    let mut descs = vec![make(17), make(5), make(9)];
    let last = make(17);
    descs.push(if kind == CollectiveKind::AllReduce {
        last.with_no_fuse()
    } else {
        last
    });
    descs
}

/// Integer-valued inputs: every reduction association is exact in f32, so
/// individually-submitted and replayed results must be bit-identical.
fn inputs_for(descs: &[CollectiveDescriptor], rank: usize) -> Vec<Vec<f32>> {
    descs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            (0..d.send_elems(rank))
                .map(|j| ((rank * 31 + i * 7 + j) % 101) as f32)
                .collect()
        })
        .collect()
}

fn submit_step_individually(
    ranks: &[RankCtx],
    descs: &[CollectiveDescriptor],
) -> Vec<Vec<Vec<f32>>> {
    let mut handles = Vec::new();
    let mut recvs: Vec<Vec<DeviceBuffer>> = Vec::new();
    for (r, ctx) in ranks.iter().enumerate() {
        let inputs = inputs_for(descs, r);
        let mut rank_recvs = Vec::new();
        for (i, desc) in descs.iter().enumerate() {
            let send = DeviceBuffer::from_f32(&inputs[i]);
            let recv = DeviceBuffer::zeroed(desc.recv_bytes(r).max(4));
            rank_recvs.push(recv.clone());
            handles.push(ctx.run_awaitable(i as u64 + 1, send, recv).unwrap());
        }
        recvs.push(rank_recvs);
    }
    for h in &handles {
        assert!(
            h.wait_for_timeout(1, Duration::from_secs(60)),
            "individual submission wedged"
        );
    }
    recvs
        .iter()
        .map(|rr| rr.iter().map(|b| b.to_f32_vec()).collect())
        .collect()
}

/// Capture the same step on every rank, replay it `rounds` times, and return
/// the per-round results. Also asserts the all-reduce arm actually fused.
fn replay_step(
    ranks: &[RankCtx],
    descs: &[CollectiveDescriptor],
    kind: CollectiveKind,
    rounds: usize,
) -> Vec<Vec<Vec<Vec<f32>>>> {
    let mut graphs = Vec::new();
    let mut recvs: Vec<Vec<DeviceBuffer>> = Vec::new();
    for (r, ctx) in ranks.iter().enumerate() {
        let inputs = inputs_for(descs, r);
        let mut rec = ctx.begin_capture().unwrap();
        let mut rank_recvs = Vec::new();
        for (i, desc) in descs.iter().enumerate() {
            let send = DeviceBuffer::from_f32(&inputs[i]);
            let recv = DeviceBuffer::zeroed(desc.recv_bytes(r).max(4));
            rec.record(i as u64 + 1, send, recv.clone()).unwrap();
            rank_recvs.push(recv);
        }
        let graph = rec.finish().unwrap();
        if kind == CollectiveKind::AllReduce {
            assert_eq!(
                (graph.len(), graph.fused_nodes()),
                (2, 1),
                "three fusable all-reduces plus one no_fuse must compile to one fused + one single node"
            );
        } else {
            assert_eq!(graph.fused_nodes(), 0, "only all-reduces fuse");
        }
        graphs.push(graph);
        recvs.push(rank_recvs);
    }
    let mut rounds_out = Vec::new();
    for round in 0..rounds {
        let handles: Vec<_> = ranks
            .iter()
            .zip(&graphs)
            .map(|(ctx, g)| ctx.replay_awaitable(g).unwrap())
            .collect();
        for h in &handles {
            assert!(
                h.wait_for_timeout(1, Duration::from_secs(60)),
                "graph replay round {round} wedged"
            );
        }
        rounds_out.push(
            recvs
                .iter()
                .map(|rr| rr.iter().map(|b| b.to_f32_vec()).collect())
                .collect(),
        );
    }
    rounds_out
}

fn run_job(kind: CollectiveKind, algo: AlgorithmKind, topo: Topology, channels: usize) {
    let n = topo.gpus().len();
    let config = DfcclConfig {
        chunk_elems: 3,
        connector_capacity: 1,
        channels,
        ..DfcclConfig::for_testing()
    }
    .with_algorithm(algo);
    let domain = DfcclDomain::new(topo, LinkModel::zero_cost(), GpuSpec::rtx_3090(), config);
    let descs = step_descriptors(kind, n);
    let ranks: Vec<_> = (0..n)
        .map(|g| domain.init_rank(GpuId(g)).unwrap())
        .collect();
    for ctx in &ranks {
        for (i, desc) in descs.iter().enumerate() {
            ctx.register(i as u64 + 1, desc.clone()).unwrap();
        }
    }
    let oracle = submit_step_individually(&ranks, &descs);
    let replays = replay_step(&ranks, &descs, kind, 2);
    for (round, replay) in replays.iter().enumerate() {
        assert_eq!(
            *replay, oracle,
            "{algo} {kind} n={n} K={channels} round {round}: replay diverges from individual submission"
        );
    }
    for (r, ctx) in ranks.iter().enumerate() {
        assert!(ctx.collective_errors().is_empty());
        // The callback fires when the CQE is published; the daemon's
        // `outstanding` decrement trails it by a few instructions. Give the
        // counter a moment before calling a leak.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ctx.outstanding() != 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(
            ctx.outstanding(),
            0,
            "{algo} {kind} n={n} K={channels} rank {r}: completions leaked"
        );
    }
    for ctx in ranks {
        ctx.destroy();
    }
}

/// The multi-node splits of `n` the hierarchical algorithm can run on.
fn hierarchical_splits(n: usize) -> Vec<Topology> {
    (2..=n)
        .filter(|d| n.is_multiple_of(*d))
        .map(|d| Topology::uniform_cluster(d, n / d))
        .collect()
}

#[test]
fn replay_matches_individual_submission_for_every_family() {
    // The tentpole's property test: for every algorithm family × rank count
    // 2–8 × channel count K ∈ {1, 2, 3}, capturing a step (three fusable
    // small all-reduces + one opted-out, or four same-kind collectives for
    // the non-reducing families) and replaying it as one SQE produces
    // results bit-identical to submitting the same sequence individually.
    // Connector capacity 1 wedges — rather than slows — on any ordering or
    // pairing mistake in graph expansion, and two replay rounds prove the
    // graph is reusable (the in-flight guard resets).
    for n in 2..=8usize {
        for k in [1usize, 2, 3] {
            run_job(
                CollectiveKind::AllReduce,
                AlgorithmKind::Ring,
                Topology::flat(n),
                k,
            );
            run_job(
                CollectiveKind::AllReduce,
                AlgorithmKind::DoubleBinaryTree,
                Topology::flat(n),
                k,
            );
            run_job(
                CollectiveKind::AllToAll,
                AlgorithmKind::Pairwise,
                Topology::flat(n),
                k,
            );
            if n == 2 {
                run_job(
                    CollectiveKind::SendRecv,
                    AlgorithmKind::Pairwise,
                    Topology::flat(2),
                    k,
                );
            }
            for topo in hierarchical_splits(n) {
                run_job(
                    CollectiveKind::AllReduce,
                    AlgorithmKind::Hierarchical,
                    topo,
                    k,
                );
            }
        }
    }
}

#[test]
fn replay_matches_individual_submission_under_preemption_storm() {
    // The storm arm: a 4-poll spin threshold over 1-slot connectors preempts
    // replayed graph nodes mid-flight constantly, so expansion state (the
    // per-node dynamic contexts tagged with the graph run) must survive
    // save/restore and daemon restarts. Results must still match individual
    // submission, and the run must actually preempt.
    let n = 4;
    let config = DfcclConfig {
        chunk_elems: 4,
        connector_capacity: 1,
        channels: 3,
        ..DfcclConfig::preemption_stress()
    };
    let domain = DfcclDomain::new(
        Topology::flat(n),
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        config,
    );
    let kind = CollectiveKind::AllReduce;
    // Bigger payloads than the family sweep so each node spans many chunks
    // and preemption lands mid-plan.
    let descs: Vec<CollectiveDescriptor> = [60usize, 24, 36, 60]
        .iter()
        .enumerate()
        .map(|(i, &count)| {
            let d = CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, gpus(n));
            if i == 3 {
                d.with_no_fuse()
            } else {
                d
            }
        })
        .collect();
    let ranks: Vec<_> = (0..n)
        .map(|g| domain.init_rank(GpuId(g)).unwrap())
        .collect();
    for ctx in &ranks {
        for (i, desc) in descs.iter().enumerate() {
            ctx.register(i as u64 + 1, desc.clone()).unwrap();
        }
    }
    let oracle = submit_step_individually(&ranks, &descs);
    let replays = replay_step(&ranks, &descs, kind, 3);
    for (round, replay) in replays.iter().enumerate() {
        assert_eq!(
            *replay, oracle,
            "storm round {round}: replay diverges from individual submission"
        );
    }
    let preemptions: u64 = ranks.iter().map(|c| c.stats().preemptions).sum();
    assert!(preemptions > 0, "the storm must actually preempt mid-plan");
    for ctx in ranks {
        assert!(ctx.collective_errors().is_empty());
        ctx.destroy();
    }
}
