//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives so the workspace's
//! `#[derive(Serialize, Deserialize)]` annotations compile without a registry
//! dependency. No serialization machinery is provided (none is used).

pub use serde_derive::{Deserialize, Serialize};
