//! Offline stand-in for `criterion`.
//!
//! Exposes the API shape the workspace's benches use — [`Criterion`],
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups with
//! `sample_size`/`measurement_time`/`warm_up_time`/`throughput`,
//! `bench_function`/`bench_with_input`, [`BenchmarkId`] and [`black_box`] —
//! with a simple mean-of-samples timer instead of criterion's statistical
//! machinery. Results are printed one line per benchmark:
//!
//! ```text
//! group/function/param        time:   12.345 µs/iter  (50 samples)
//! ```
//!
//! Pass `--quick` (or set `CRITERION_QUICK=1`) to cap measurement time for
//! smoke runs in CI.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identify a benchmark by parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function.is_empty(), &self.parameter) {
            (false, Some(p)) => format!("{}/{}", self.function, p),
            (false, None) => self.function.clone(),
            (true, Some(p)) => p.clone(),
            (true, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Throughput annotation for a group (reported as a rate next to the time).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    measurement: Duration,
    warm_up: Duration,
    /// Mean seconds per iteration of the last `iter` call.
    pub(crate) last_mean_s: f64,
    pub(crate) last_samples: usize,
}

impl Bencher {
    /// Measure `f`, recording the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run without recording.
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(f());
        }
        // Calibrate batch size so one batch is ≥ ~50 µs (amortizes timer cost).
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(50) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        // Measurement: fixed sample count within the measurement budget.
        let deadline = Instant::now() + self.measurement;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut samples = 0usize;
        while samples < self.samples && (samples == 0 || Instant::now() < deadline) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += batch;
            samples += 1;
        }
        self.last_mean_s = if iters == 0 {
            0.0
        } else {
            total.as_secs_f64() / iters as f64
        };
        self.last_samples = samples;
    }
}

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false)
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measurement time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.render(), |b| f(b));
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.render(), |b| f(b, input));
        self
    }

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let quick = quick_mode();
        let mut b = Bencher {
            samples: if quick { 3 } else { self.sample_size },
            measurement: if quick {
                Duration::from_millis(50)
            } else {
                self.measurement
            },
            warm_up: if quick {
                Duration::from_millis(5)
            } else {
                self.warm_up
            },
            last_mean_s: 0.0,
            last_samples: 0,
        };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if b.last_mean_s > 0.0 => {
                format!(
                    "  {:.2} MiB/s",
                    bytes as f64 / b.last_mean_s / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(elems)) if b.last_mean_s > 0.0 => {
                format!("  {:.0} elem/s", elems as f64 / b.last_mean_s)
            }
            _ => String::new(),
        };
        println!(
            "{:<56} time: {:>12}/iter  ({} samples){}",
            format!("{}/{}", self.name, label),
            fmt_time(b.last_mean_s),
            b.last_samples,
            rate
        );
        self.criterion.benchmarks_run += 1;
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement: Duration::from_secs(1),
            warm_up: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark with default settings.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(name, |b| f(b));
        group.finish();
        self
    }

    /// Print the run summary (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!(
            "criterion-shim: {} benchmark(s) completed",
            self.benchmarks_run
        );
    }
}

/// Bundle benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_groups_print() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(1));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 42), &42, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn benchmark_id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("f", "p").render(), "f/p");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
        assert_eq!(BenchmarkId::from_parameter(7).render(), "7");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).contains("µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
