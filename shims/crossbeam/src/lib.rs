//! Offline stand-in for the parts of `crossbeam` this workspace uses:
//! [`queue::ArrayQueue`], a bounded MPMC queue.
//!
//! The real crate is lock-free; this stand-in is a bounded ring over a
//! `std::sync::Mutex`, which preserves the API and the linearizable FIFO
//! semantics the transport layer relies on. The connector hot path touches
//! the queue once per chunk, so the mutex cost is immaterial next to the
//! modelled link costs.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A bounded multi-producer multi-consumer FIFO queue.
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        capacity: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Create a queue holding at most `capacity` elements.
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0, "ArrayQueue capacity must be positive");
            ArrayQueue {
                inner: Mutex::new(VecDeque::with_capacity(capacity)),
                capacity,
            }
        }

        /// Append an element, or hand it back if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if q.len() >= self.capacity {
                return Err(value);
            }
            q.push_back(value);
            Ok(())
        }

        /// Remove and return the oldest element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// Maximum number of elements.
        pub fn capacity(&self) -> usize {
            self.capacity
        }

        /// Current number of elements.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue holds no elements.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Whether the queue is at capacity.
        pub fn is_full(&self) -> bool {
            self.len() >= self.capacity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::ArrayQueue;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = ArrayQueue::new(2);
        assert!(q.is_empty());
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(q.is_full());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_items() {
        let q = Arc::new(ArrayQueue::new(8));
        let n = 1_000u64;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..n {
                        let mut v = p * n + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while seen.len() < 4 * n as usize {
                    match q.pop() {
                        Some(v) => seen.push(v),
                        None => std::thread::yield_now(),
                    }
                }
                seen
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        let mut seen = consumer.join().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..4 * n).collect::<Vec<_>>());
    }
}
