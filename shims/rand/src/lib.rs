//! Offline stand-in for the `rand` crate.
//!
//! Provides the slice of the 0.8 API this workspace uses — [`SeedableRng`],
//! [`Rng`] (`gen_bool`, `gen_range`, `gen`), [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`] — on top of a small, fast, deterministic
//! xoshiro256** generator seeded through SplitMix64. Statistical quality is
//! far beyond what the simulations here need; cryptographic strength is
//! explicitly *not* provided (and not needed).

/// Core random-source trait: the 64-bit output primitive.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring the pieces of `rand::Rng` in use.
pub trait Rng: RngCore {
    /// A uniformly random `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// A uniformly random value in `[range.start, range.end)`.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty gen_range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift rejection-free mapping (Lemire); bias is negligible
        // for the simulation ranges used here.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi as usize
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_respects_extremes_and_probability() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
