//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to a crates registry, so the workspace
//! vendors the narrow slice of the `parking_lot` API it actually uses:
//! [`Mutex`] / [`RwLock`] with non-poisoning, guard-returning `lock()` /
//! `read()` / `write()`, and a [`Condvar`] that waits on a `&mut MutexGuard`
//! (with `wait`, `wait_for`, `wait_until` and a [`WaitTimeoutResult`]).
//!
//! Semantics match `parking_lot` where the workspace depends on them:
//! poisoning is swallowed (a panicking holder does not poison the lock) and
//! the guard types implement `Deref`/`DerefMut`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard of a [`Mutex`]. Holds an `Option` internally so a [`Condvar`]
/// can temporarily take the underlying std guard during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with this module's [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified. The guard is released during the wait and
    /// re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already taken");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard already taken");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Block until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wake one waiter. Returns whether a thread could have been woken.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard of a [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard of a [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_timeout_reports_timed_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)).timed_out());
        assert!(cv
            .wait_until(&mut g, Instant::now() - Duration::from_millis(1))
            .timed_out());
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
