//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest surface this workspace uses: the
//! [`proptest!`] macro over `arg in strategy` bindings, range strategies for
//! integers and floats, `prop_assert!`/`prop_assert_eq!`, and
//! [`test_runner::Config`] with `ProptestConfig::with_cases`. Cases are
//! sampled deterministically (seeded per test from the test name), so runs
//! are reproducible; shrinking is not implemented — a failing case panics
//! with the sampled inputs in the message instead.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The value type produced.
        type Value;
        /// Sample one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty proptest range");
                    let span = (self.end - self.start) as u128;
                    let off = (rng.gen_f64() * span as f64) as u128;
                    self.start + off.min(span - 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            self.start + rng.gen_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut StdRng) -> f32 {
            self.start + rng.gen_f64() as f32 * (self.end - self.start)
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod test_runner {
    /// Runner configuration (only the case count is honored).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }
}

/// Items a `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Deterministic per-test seed derived from the test path (FNV-1a).
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// Define property tests: each `arg in strategy` binding is sampled per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::__rt::SeedableRng as _;
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::__rt::StdRng::seed_from_u64(
                    $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )*
                    let case_desc = format!(
                        concat!("case {}: ", $(stringify!($arg), " = {:?} ",)*),
                        case $(, $arg)*
                    );
                    let run = || -> () { $body };
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                    if let Err(e) = outcome {
                        eprintln!("proptest failure in {} ({})", stringify!($name), case_desc);
                        std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn sampled_ranges_stay_in_bounds(x in 3usize..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn multiple_properties_in_one_block(a in 0u64..5, b in 0u64..5) {
            prop_assert!(a + b < 10);
        }
    }

    #[test]
    fn config_default_and_with_cases() {
        assert_eq!(ProptestConfig::default().cases, 32);
        assert_eq!(ProptestConfig::with_cases(8).cases, 8);
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::__rt::seed_for("a"), crate::__rt::seed_for("b"));
    }
}
