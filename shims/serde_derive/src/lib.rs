//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata on
//! plain data types — nothing actually serializes through serde (JSON output
//! is hand-rolled in `dfccl-bench`). These derives therefore expand to
//! nothing, which keeps the types compiling identically while avoiding a
//! registry dependency.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
