//! Deadlock prevention demo: the Fig. 1(c)/(d) situations.
//!
//! Two GPUs invoke the same two all-reduces in *opposite* orders, with a
//! `cudaDeviceSynchronize()`-style barrier between them. Under the NCCL-like
//! baseline this deadlocks (detected by the watchdog); under DFCCL the daemon
//! kernel preempts the stuck collective, quits voluntarily so the
//! synchronization drains, and every collective completes.
//!
//! ```text
//! cargo run --example deadlock_prevention
//! ```

use std::sync::Arc;
use std::time::Duration;

use dfccl::DfcclDomain;
use dfccl_baseline::{wait_all_or_deadlock, NcclDomain};
use dfccl_collectives::{CollectiveDescriptor, DataType, DeviceBuffer, ReduceOp};
use gpu_sim::{GpuId, StreamId};

const COUNT: usize = 4096;

fn devices() -> Vec<GpuId> {
    vec![GpuId(0), GpuId(1)]
}

fn baseline_deadlocks() {
    println!("--- NCCL-like baseline: disordered all-reduces with a device synchronization ---");
    let domain = NcclDomain::flat_for_testing(2, 4);
    let mut handles = Vec::new();
    let mut threads = Vec::new();
    for g in 0..2 {
        let domain = Arc::clone(&domain);
        threads.push(std::thread::spawn(move || {
            let rank = domain.init_rank(GpuId(g)).unwrap();
            for coll in [0u64, 1] {
                rank.register(
                    coll,
                    CollectiveDescriptor::all_reduce(
                        COUNT,
                        DataType::F32,
                        ReduceOp::Sum,
                        devices(),
                    ),
                )
                .unwrap();
            }
            // GPU 0 invokes A then B; GPU 1 invokes B then A.
            let order = if g == 0 { [0u64, 1] } else { [1, 0] };
            let first = rank
                .launch_collective(
                    order[0],
                    StreamId(1 + order[0] as usize),
                    DeviceBuffer::from_f32(&vec![1.0; COUNT]),
                    DeviceBuffer::zeroed(COUNT * 4),
                )
                .unwrap();
            // cudaDeviceSynchronize between the two invocations.
            let _ = rank.device_synchronize_timeout(Duration::from_millis(300));
            let second = rank
                .launch_collective(
                    order[1],
                    StreamId(1 + order[1] as usize),
                    DeviceBuffer::from_f32(&vec![1.0; COUNT]),
                    DeviceBuffer::zeroed(COUNT * 4),
                )
                .unwrap();
            vec![first, second]
        }));
    }
    for t in threads {
        handles.extend(t.join().unwrap());
    }
    let outcome = wait_all_or_deadlock(&handles, &domain.engines(), Duration::from_secs(2));
    println!("baseline outcome: {outcome:?}\n");
    assert!(outcome.is_deadlock());
    domain.shutdown();
}

fn dfccl_survives() {
    println!("--- DFCCL: the same disordered invocation pattern ---");
    let domain = DfcclDomain::flat_for_testing(2);
    let ranks: Vec<_> = (0..2)
        .map(|g| Arc::new(domain.init_rank(GpuId(g)).unwrap()))
        .collect();
    for rank in &ranks {
        for coll in [0u64, 1] {
            rank.register_all_reduce(coll, COUNT, DataType::F32, ReduceOp::Sum, devices(), 0)
                .unwrap();
        }
    }
    let mut threads = Vec::new();
    for (g, rank) in ranks.iter().enumerate() {
        let rank = Arc::clone(rank);
        threads.push(std::thread::spawn(move || {
            let order = if g == 0 { [0u64, 1] } else { [1, 0] };
            let h_first = rank
                .run_awaitable(
                    order[0],
                    DeviceBuffer::from_f32(&vec![1.0; COUNT]),
                    DeviceBuffer::zeroed(COUNT * 4),
                )
                .unwrap();
            // The synchronization completes because the daemon kernel quits
            // voluntarily once nothing can progress.
            assert!(rank.device_synchronize(Duration::from_secs(30)));
            let h_second = rank
                .run_awaitable(
                    order[1],
                    DeviceBuffer::from_f32(&vec![1.0; COUNT]),
                    DeviceBuffer::zeroed(COUNT * 4),
                )
                .unwrap();
            assert!(h_first.wait_for_timeout(1, Duration::from_secs(60)));
            assert!(h_second.wait_for_timeout(1, Duration::from_secs(60)));
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    for (g, rank) in ranks.iter().enumerate() {
        let stats = rank.stats();
        println!(
            "GPU {g}: completed {} collectives, {} preemptions, {} voluntary quits, {} daemon starts",
            stats.collectives_completed, stats.preemptions, stats.voluntary_quits, stats.daemon_starts
        );
    }
    for rank in &ranks {
        rank.destroy();
    }
    println!("DFCCL completed every collective — no deadlock.");
}

fn main() {
    baseline_deadlocks();
    dfccl_survives();
}
