//! Quickstart: register one all-reduce over two simulated GPUs, run it, and
//! check the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dfccl::DfcclDomain;
use dfccl_collectives::{DataType, DeviceBuffer, ReduceOp};
use gpu_sim::GpuId;

fn main() {
    // A domain describes the cluster: topology, link model and GPU devices.
    // `flat_for_testing` gives two GPUs with zero-cost links.
    let domain = DfcclDomain::flat_for_testing(2);
    let devices: Vec<GpuId> = vec![GpuId(0), GpuId(1)];

    // dfcclInit: one rank context per GPU.
    let rank0 = domain.init_rank(GpuId(0)).expect("init rank 0");
    let rank1 = domain.init_rank(GpuId(1)).expect("init rank 1");

    // dfcclRegisterAllReduce: register once, run many times.
    const COLL_ID: u64 = 1;
    const COUNT: usize = 1024;
    for rank in [&rank0, &rank1] {
        rank.register_all_reduce(
            COLL_ID,
            COUNT,
            DataType::F32,
            ReduceOp::Sum,
            devices.clone(),
            0,
        )
        .expect("register");
    }

    // dfcclRunAllReduce: asynchronous invocation; the completion handle wraps
    // the user callback.
    let out0 = DeviceBuffer::zeroed(COUNT * 4);
    let out1 = DeviceBuffer::zeroed(COUNT * 4);
    let h0 = rank0
        .run_awaitable(
            COLL_ID,
            DeviceBuffer::from_f32(&vec![1.0; COUNT]),
            out0.clone(),
        )
        .expect("run on rank 0");
    let h1 = rank1
        .run_awaitable(
            COLL_ID,
            DeviceBuffer::from_f32(&vec![2.0; COUNT]),
            out1.clone(),
        )
        .expect("run on rank 1");
    h0.wait_for(1);
    h1.wait_for(1);

    assert!(out0.to_f32_vec().iter().all(|&v| v == 3.0));
    assert!(out1.to_f32_vec().iter().all(|&v| v == 3.0));
    println!("all-reduce of {COUNT} f32 elements completed on both ranks: every element is 3.0");

    let stats = rank0.stats();
    println!(
        "rank 0 daemon kernel: {} primitives executed, {} preemptions, {} voluntary quits",
        stats.primitives_executed, stats.preemptions, stats.voluntary_quits
    );

    // dfcclDestroy.
    rank0.destroy();
    rank1.destroy();
}
