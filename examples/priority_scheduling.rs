//! Priority scheduling demo: user-specified priorities steer the daemon
//! kernel's task queue (Sec. 4.3, "Priority-based Ordering").
//!
//! Two collectives are registered on two GPUs — a large low-priority
//! all-reduce and a small high-priority all-reduce. Both are submitted
//! back-to-back; with the priority-based ordering policy the small collective
//! overtakes the large one in the task queue, which is the mechanism behind
//! communication/computation overlap schemes like ByteScheduler or P3.
//!
//! ```text
//! cargo run --release --example priority_scheduling
//! ```

use std::sync::Arc;
use std::time::Instant;

use dfccl::{DfcclConfig, DfcclDomain, OrderingPolicy};
use dfccl_collectives::{DataType, DeviceBuffer, ReduceOp};
use dfccl_transport::{LinkModel, Topology};
use gpu_sim::{GpuId, GpuSpec};

const BIG: usize = 1 << 20; // 4 MiB of f32
const SMALL: usize = 1 << 12; // 16 KiB of f32

fn run(policy: OrderingPolicy) -> (f64, f64) {
    let domain = DfcclDomain::new(
        Topology::flat(2),
        LinkModel::table2_compressed(50.0),
        GpuSpec::rtx_3090(),
        DfcclConfig {
            ordering: policy,
            ..DfcclConfig::default()
        },
    );
    let devices: Vec<GpuId> = vec![GpuId(0), GpuId(1)];
    let ranks: Vec<_> = devices
        .iter()
        .map(|&g| Arc::new(domain.init_rank(g).unwrap()))
        .collect();
    for rank in &ranks {
        // Collective 1: the big, low-priority gradient bucket.
        rank.register_all_reduce(1, BIG, DataType::F32, ReduceOp::Sum, devices.clone(), 0)
            .unwrap();
        // Collective 2: the small, high-priority one (later layers' gradients).
        rank.register_all_reduce(2, SMALL, DataType::F32, ReduceOp::Sum, devices.clone(), 10)
            .unwrap();
    }
    let start = Instant::now();
    let mut big_handles = Vec::new();
    let mut small_handles = Vec::new();
    for rank in &ranks {
        big_handles.push(
            rank.run_awaitable(
                1,
                DeviceBuffer::zeroed(BIG * 4),
                DeviceBuffer::zeroed(BIG * 4),
            )
            .unwrap(),
        );
        small_handles.push(
            rank.run_awaitable(
                2,
                DeviceBuffer::zeroed(SMALL * 4),
                DeviceBuffer::zeroed(SMALL * 4),
            )
            .unwrap(),
        );
    }
    for h in &small_handles {
        h.wait_for(1);
    }
    let small_done = start.elapsed().as_secs_f64() * 1e3;
    for h in &big_handles {
        h.wait_for(1);
    }
    let all_done = start.elapsed().as_secs_f64() * 1e3;
    for rank in &ranks {
        rank.destroy();
    }
    (small_done, all_done)
}

fn main() {
    let (fifo_small, fifo_all) = run(OrderingPolicy::Fifo);
    let (prio_small, prio_all) = run(OrderingPolicy::PriorityBased);
    println!("FIFO ordering:            small collective done at {fifo_small:.2} ms, everything at {fifo_all:.2} ms");
    println!("priority-based ordering:  small collective done at {prio_small:.2} ms, everything at {prio_all:.2} ms");
    println!(
        "\nWith priority-based ordering the high-priority collective finishes {:.1}x sooner,",
        fifo_small / prio_small.max(1e-9)
    );
    println!("while total completion time stays comparable — the overlap opportunity of Sec. 4.3.");
}
