//! Data-parallel training demo: ResNet-50 gradient all-reduces on four
//! simulated GPUs, comparing DFCCL with Horovod-style orchestrated NCCL.
//!
//! ```text
//! cargo run --release --example data_parallel_training
//! ```

use dfccl_baseline::StrategyKind;
use dfccl_workloads::{data_parallel_plan, train, BackendKind, DnnModel, TrainerConfig};
use gpu_sim::GpuId;

fn main() {
    let model = DnnModel::resnet50();
    let gpus: Vec<GpuId> = (0..4).map(GpuId).collect();
    let per_gpu_batch = 32;
    let plan = data_parallel_plan(&model, &gpus, per_gpu_batch);

    println!(
        "training plan: {} gradient-bucket all-reduces per iteration over {} GPUs ({} bytes/GPU)",
        plan.collectives.len(),
        plan.gpus.len(),
        plan.bytes_per_gpu(0)
    );

    let cfg = TrainerConfig {
        iterations: 10,
        ..TrainerConfig::default()
    };
    let global_batch = per_gpu_batch * gpus.len();

    for backend in [
        BackendKind::Dfccl,
        BackendKind::NcclOrchestrated(StrategyKind::Horovod),
        BackendKind::NcclOrchestrated(StrategyKind::OneFlowStaticSort),
    ] {
        let report = train(&plan, backend, &cfg, global_batch);
        println!(
            "{:32} mean iteration {:>8.2} ms, throughput {:>8.1} samples/s, CoV {:.1}%",
            report.backend,
            report.mean_iteration().as_secs_f64() * 1e3,
            report.throughput(),
            report.coefficient_of_variation() * 100.0
        );
    }
    println!("\nExpected shape (Fig. 10): DFCCL ≈ statically-sorted NCCL, both ahead of Horovod.");
}
